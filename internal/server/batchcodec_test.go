package server

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"testing"

	"privtree"
)

// TestParseQueryBodyMatchesEncodingJSON is the codec's ground-truth test:
// on round-trippable documents the pooled columnar parser must recover
// bit-identical float64s to encoding/json, because clients compare batch
// answers against locally rebuilt releases.
func TestParseQueryBodyMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 22))
	rows := [][]float64{
		{},
		{0, 0, 1, 1},
		{1e-9, 2.5e-7, 1e21, 9.999999999999999e20},
		{-0.75, math.SmallestNonzeroFloat64, math.MaxFloat64, -1e-300},
		{0.1 + 0.2, 1.0 / 3.0, 2e308 * 0, 5},
	}
	for i := 0; i < 40; i++ {
		row := make([]float64, 4)
		for j := range row {
			row[j] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.IntN(40)-20))
		}
		rows = append(rows, row)
	}
	blob, err := json.Marshal(map[string]any{"queries": rows})
	if err != nil {
		t.Fatal(err)
	}
	var sc queryScratch
	batch, err := parseQueryBody(string(blob), &sc, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if !batch.hasQueries || batch.hasStrings {
		t.Fatalf("presence flags wrong: %+v", batch)
	}
	if got := len(sc.offs) - 1; got != len(rows) {
		t.Fatalf("parsed %d rows, want %d", got, len(rows))
	}
	for i, row := range rows {
		got := sc.flat[sc.offs[i]:sc.offs[i+1]]
		if len(got) != len(row) {
			t.Fatalf("row %d: %d values, want %d", i, len(got), len(row))
		}
		for j := range row {
			if got[j] != row[j] && !(math.IsNaN(got[j]) && math.IsNaN(row[j])) {
				t.Fatalf("row %d[%d]: parsed %v (%x), want %v (%x)",
					i, j, got[j], math.Float64bits(got[j]), row[j], math.Float64bits(row[j]))
			}
		}
	}
}

// TestAppendQueryResponseMatchesEncodingJSON checks the response renderer:
// every float64 must decode back to itself, exactly as the old
// map-and-Encoder path guaranteed.
func TestAppendQueryResponseMatchesEncodingJSON(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	counts := []float64{0, 1, -1, 0.5, 1e-7, 123456.789, 1e21, 3e-300, math.MaxFloat64}
	for i := 0; i < 50; i++ {
		counts = append(counts, (rng.Float64()-0.5)*math.Pow(10, float64(rng.IntN(44)-22)))
	}
	buf := appendQueryResponse(nil, "r7", counts, 12345)
	var decoded struct {
		ReleaseID string    `json:"release_id"`
		Counts    []float64 `json:"counts"`
		Queries   int       `json:"queries"`
		ElapsedNS int64     `json:"elapsed_ns"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, buf)
	}
	if decoded.ReleaseID != "r7" || decoded.Queries != len(counts) || decoded.ElapsedNS != 12345 {
		t.Fatalf("envelope wrong: %+v", decoded)
	}
	for i := range counts {
		if decoded.Counts[i] != counts[i] {
			t.Fatalf("count %d: %v (%x) decoded as %v (%x)",
				i, counts[i], math.Float64bits(counts[i]), decoded.Counts[i], math.Float64bits(decoded.Counts[i]))
		}
	}
	// Spot-check the formatting itself mirrors encoding/json.
	for _, f := range counts {
		want, err := json.Marshal(f)
		if err != nil {
			continue
		}
		if got := appendJSONFloat(nil, f); !bytes.Equal(got, want) {
			t.Fatalf("float %v rendered %q, encoding/json renders %q", f, got, want)
		}
	}
}

// TestParseQueryBodyHostile drives malformed and adversarial bodies
// through the parser: every one must produce an error, never a panic or a
// silent partial parse.
func TestParseQueryBodyHostile(t *testing.T) {
	bad := []string{
		``, `{`, `[`, `null`, `42`, `"queries"`,
		`{"queries"}`, `{"queries":}`, `{"queries":[}`, `{"queries":[[}`,
		`{"queries":[[1,]]}`, `{"queries":[[01]]}`, `{"queries":[[1.]]}`,
		`{"queries":[[1e]]}`, `{"queries":[[+1]]}`, `{"queries":[[.5]]}`,
		`{"queries":[[NaN]]}`, `{"queries":[[Infinity]]}`, `{"queries":[[0x10]]}`,
		`{"queries":[[1]],"queries":[[2]],}`, `{"queries":[[1]]`,
		`{"strings":[[1.5]]}`, `{"strings":[[2e3]]}`, `{"strings":[[999999999999999]]}`,
		`{"strings":[[01]]}`, `{"strings":[[-01]]}`, `{"strings":[[007]]}`,
		`{"unknown":[[1]]}`, `{"queries":[[1]],"extra":1}`,
		`{"queries":[1,2]}`, `{"queries":{"a":1}}`, `{"strings":"abc"}`,
	}
	for _, body := range bad {
		var sc queryScratch
		if _, err := parseQueryBody(body, &sc, 100); err == nil {
			t.Errorf("hostile body accepted: %s", body)
		}
	}
	// And the acceptable edge cases.
	good := []string{
		`{}`, `{"queries":null}`, `{"queries":[]}`, `{"strings":[[]]}`,
		` { "queries" : [ [ 1 , 2 ] ] } `,
		`{"queries":[[1,2]],"strings":null}`,
	}
	for _, body := range good {
		var sc queryScratch
		if _, err := parseQueryBody(body, &sc, 100); err != nil {
			t.Errorf("valid body %s rejected: %v", body, err)
		}
	}
}

// TestParseQueryBodyRowLimit checks the parser aborts oversized batches
// with the 413 sentinel before buffering them.
func TestParseQueryBodyRowLimit(t *testing.T) {
	var b bytes.Buffer
	b.WriteString(`{"queries":[`)
	for i := 0; i < 50; i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(`[0,0,1,1]`)
	}
	b.WriteString(`]}`)
	var sc queryScratch
	if _, err := parseQueryBody(b.String(), &sc, 10); err != errBatchTooLarge {
		t.Fatalf("50 rows at limit 10: err = %v, want errBatchTooLarge", err)
	}
	if _, err := parseQueryBody(b.String(), &sc, 50); err != nil {
		t.Fatalf("50 rows at limit 50 rejected: %v", err)
	}
}

// TestServerBatchQueryAllocationBudget is the serving-plane guard: a
// 10k-query batch answered end to end through ServeHTTP must stay well
// under one allocation per query in steady state (the pooled codec's whole
// point; the seed spent ~3 allocs/query here).
func TestServerBatchQueryAllocationBudget(t *testing.T) {
	srv := mustNew(t, Options{Workers: 1})
	d, err := srv.Registry().AddSpatial("alloc", privtree.UnitCube(2), testPoints(20000), 4.0)
	if err != nil {
		t.Fatal(err)
	}
	rel, _, err := d.Release(ReleaseParams{Epsilon: 1.0, Seed: 1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	const nq = 10_000
	rng := rand.New(rand.NewPCG(3, 4))
	queries := make([][]float64, nq)
	for i := range queries {
		lox, loy := rng.Float64()*0.8, rng.Float64()*0.8
		queries[i] = []float64{lox, loy, lox + 0.15, loy + 0.15}
	}
	body, err := json.Marshal(map[string]any{"queries": queries})
	if err != nil {
		t.Fatal(err)
	}
	url := "/v1/datasets/alloc/releases/" + rel.ID + "/query"

	allocs := testing.AllocsPerRun(5, func() {
		req := httptest.NewRequest("POST", url, bytes.NewReader(body))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("batch returned %d: %s", rec.Code, rec.Body.String())
		}
	})
	t.Logf("allocs per 10k-query batch: %v", allocs)
	if allocs > nq/5 {
		t.Fatalf("batch of %d queries cost %v allocs (%.3f/query), want well under 1/query", nq, allocs, allocs/nq)
	}
}

// TestServerQueryAnswersUnchangedByCodec pins the new codec to the old
// semantics: answers must equal direct RangeCount calls on the same
// release, including for exponent-form and boundary coordinates.
func TestServerQueryAnswersUnchangedByCodec(t *testing.T) {
	ts := httptest.NewServer(mustNew(t, Options{}))
	defer ts.Close()
	client := ts.Client()

	pts := testPoints(10000)
	rows := make([][]float64, len(pts))
	for i, p := range pts {
		rows[i] = p
	}
	doJSON(t, client, "POST", ts.URL+"/v1/datasets",
		map[string]any{"name": "codec", "epsilon": 1.0, "points": rows}, nil)
	var rel struct {
		ID string `json:"release_id"`
	}
	doJSON(t, client, "POST", ts.URL+"/v1/datasets/codec/releases",
		map[string]any{"epsilon": 0.5, "seed": 9}, &rel)

	queries := [][]float64{
		{0, 0, 1, 1},
		{1e-9, 1e-9, 0.5, 0.5},
		{0.25, 0.25, 0.750000000000001, 0.75},
		{0.1, 0.2, 0.30000000000000004, 0.7},
	}
	var qresp struct {
		Counts []float64 `json:"counts"`
	}
	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/codec/releases/"+rel.ID+"/query",
		map[string]any{"queries": queries}, &qresp)
	if status != http.StatusOK || len(qresp.Counts) != len(queries) {
		t.Fatalf("batch: %d %+v", status, qresp)
	}
	tree, err := privtree.BuildSpatial(privtree.UnitCube(2), pts, 0.5, privtree.SpatialOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := tree.RangeCount(privtree.NewRect(privtree.Point{q[0], q[1]}, privtree.Point{q[2], q[3]}))
		if qresp.Counts[i] != want {
			t.Fatalf("query %d: server %v, local %v", i, qresp.Counts[i], want)
		}
	}
}
