package server

import (
	"errors"
	"fmt"
	"math"
	"net/http"

	"privtree"
	"privtree/internal/obs"
)

// POST /v1/datasets/{name}/ingest — the write side of a streaming
// dataset. The body is decoded through the same pooled columnar codec as
// the batch query plane (O(1) allocations per batch), validated in full
// BEFORE anything is journaled or applied (a hostile batch either applies
// completely or not at all), journaled durably before it is acknowledged,
// and appended to the pending epoch buffer. A batch may also trigger a
// seal: explicitly ("seal": true), by size (spec seal_every), or — between
// requests — by the interval timer.
//
// Idempotency: a client-supplied batch_seq at or below the highest
// applied sequence is acknowledged as a duplicate without applying —
// that is what makes blind retries of ingest writes safe (the client's
// sticky-primary router relies on it). Omitted (zero) sequences are
// auto-assigned server-side so every journaled batch still carries a
// strictly increasing sequence for replay filtering.

// ingestBatch is the decoded envelope of one ingest request.
type ingestBatch struct {
	batchSeq   uint64
	seal       bool
	hasPoints  bool
	hasStrings bool
}

// parseIngestBody decodes {"batch_seq":N, "points":[[...],...],
// "strings":[[...],...], "seal":bool} into sc's pooled buffers. Unknown
// fields are rejected, mirroring the query codec.
func parseIngestBody(s string, sc *queryScratch, maxRows int) (ingestBatch, error) {
	p := parser{s: s}
	var out ingestBatch
	p.ws()
	if !p.eat('{') {
		return out, p.fail("expected an object")
	}
	p.ws()
	if p.eat('}') {
		return out, nil
	}
	for {
		key, err := p.key()
		if err != nil {
			return out, err
		}
		p.ws()
		if !p.eat(':') {
			return out, p.fail("expected ':' after field name")
		}
		switch key {
		case "batch_seq":
			v, err := p.uint()
			if err != nil {
				return out, err
			}
			out.batchSeq = v
		case "points":
			present, err := p.floatRows(sc, maxRows)
			if err != nil {
				return out, err
			}
			out.hasPoints = present
		case "strings":
			present, err := p.intRows(sc, maxRows)
			if err != nil {
				return out, err
			}
			out.hasStrings = present
		case "seal":
			v, err := p.boolean()
			if err != nil {
				return out, err
			}
			out.seal = v
		default:
			return out, fmt.Errorf("unknown field %q", key)
		}
		p.ws()
		if p.eat(',') {
			p.ws()
			continue
		}
		if p.eat('}') {
			return out, nil
		}
		return out, p.fail("expected ',' or '}' in object")
	}
}

// uint parses a non-negative JSON integer literal as a uint64.
func (p *parser) uint() (uint64, error) {
	p.ws()
	s := p.s
	start := p.i
	var v uint64
	for p.i < len(s) && s[p.i] >= '0' && s[p.i] <= '9' {
		d := uint64(s[p.i] - '0')
		if v > (math.MaxUint64-d)/10 {
			return 0, p.fail("integer out of range")
		}
		v = v*10 + d
		p.i++
	}
	if p.i == start {
		return 0, p.fail("expected a non-negative integer")
	}
	if p.i-start > 1 && s[start] == '0' {
		return 0, p.fail("leading zero in integer")
	}
	if p.i < len(s) && (s[p.i] == '.' || s[p.i] == 'e' || s[p.i] == 'E') {
		return 0, p.fail("expected an integer, not a float")
	}
	return v, nil
}

// boolean parses the literal true or false.
func (p *parser) boolean() (bool, error) {
	p.ws()
	if len(p.s)-p.i >= 4 && p.s[p.i:p.i+4] == "true" {
		p.i += 4
		return true, nil
	}
	if len(p.s)-p.i >= 5 && p.s[p.i:p.i+5] == "false" {
		p.i += 5
		return false, nil
	}
	return false, p.fail("expected true or false")
}

// ingestResponse acknowledges one ingest batch. Applied counts are
// disclosed to the ingester only — who supplied the records.
type ingestResponse struct {
	BatchSeq  uint64 `json:"batch_seq"`
	Applied   int    `json:"applied"`
	Duplicate bool   `json:"duplicate,omitempty"`
	Pending   int    `json:"pending"`

	Sealed        bool    `json:"sealed"`
	Epoch         uint64  `json:"epoch,omitempty"`      // epoch just sealed (when Sealed)
	ReleaseID     string  `json:"release_id,omitempty"` // its release (when Sealed)
	LastEpoch     uint64  `json:"last_epoch"`           // newest epoch in the served window
	WindowEpsilon float64 `json:"window_epsilon"`
	EpsilonSpent  float64 `json:"epsilon_spent"`
	// SealError reports a failed seal attempt AFTER the batch itself was
	// durably applied (the ack stays truthful: applied yes, sealed no).
	// The frozen epoch is retained and retried on the next trigger.
	SealError string `json:"seal_error,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if s.isReplica.Load() {
		s.writeReadOnly(w)
		return
	}
	if s.fenced.Load() {
		writeError(w, http.StatusForbidden, &APIError{Code: CodeFenced,
			Message: "node fenced by a higher writer epoch; ingest on the current primary"})
		return
	}
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if !d.IsStream() {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: fmt.Sprintf("dataset %q is not a streaming dataset; register it with a stream spec", d.Name)})
		return
	}
	// Ingest rides the batch plane's admission gate: decoding and
	// validating a large batch is CPU-bound work of the same shape as a
	// query batch. A triggered seal additionally takes a build slot below.
	ctx := r.Context()
	if err := s.batchGate.acquire(ctx); err != nil {
		s.metrics.recordAdmissionReject(err)
		writeAdmissionError(w, err, "batch")
		return
	}
	defer s.batchGate.release()
	sc := s.scratch.Get().(*queryScratch)
	defer func() {
		if sc.retainedBytes() <= maxPooledScratchBytes {
			s.scratch.Put(sc)
		}
	}()

	body, err := readBody(r, sc.body)
	sc.body = body
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &APIError{
				Code: CodeTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "reading body: " + err.Error()})
		return
	}
	batch, err := parseIngestBody(string(body), sc, s.opts.MaxBatch)
	if err != nil {
		if errors.Is(err, errBatchTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &APIError{Code: CodeTooLarge,
				Message: fmt.Sprintf("batch exceeds limit %d", s.opts.MaxBatch)})
			return
		}
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "invalid JSON: " + err.Error()})
		return
	}

	// Materialize rows aliasing the scratch columns (Stream.Append* copies
	// into its slab, so no second copy happens) and validate EVERYTHING
	// before any durable effect: a batch with one bad row applies nothing.
	st := d.stream
	var pts []privtree.Point
	var seqs []privtree.Sequence
	switch d.Kind {
	case KindSpatial:
		if batch.hasStrings {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "spatial stream ingests points, not strings"})
			return
		}
		if batch.hasPoints {
			rows := len(sc.offs) - 1
			pts = make([]privtree.Point, rows)
			for i := 0; i < rows; i++ {
				pts[i] = privtree.Point(sc.flat[sc.offs[i]:sc.offs[i+1]])
			}
		}
	case KindSequence:
		if batch.hasPoints {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "sequence stream ingests strings, not points"})
			return
		}
		if batch.hasStrings {
			rows := len(sc.soffs) - 1
			seqs = make([]privtree.Sequence, rows)
			for i := 0; i < rows; i++ {
				seqs[i] = privtree.Sequence(sc.syms[sc.soffs[i]:sc.soffs[i+1]])
			}
		}
	}
	nRecords := len(pts) + len(seqs)
	if nRecords == 0 && !batch.seal {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "empty ingest batch: provide points/strings, or seal:true to seal the pending epoch"})
		return
	}
	if err := st.validateBatch(pts, seqs); err != nil {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: err.Error()})
		return
	}

	st.mu.Lock()
	if batch.batchSeq != 0 && batch.batchSeq <= st.lastBatch {
		// Duplicate delivery (a retried write): acknowledge without
		// applying. The original application — possibly by a previous
		// process, recovered via journal or seal records — already counted.
		resp := ingestResponse{
			BatchSeq: batch.batchSeq, Duplicate: true,
			Pending:       st.buf.Pending() + st.frozenN,
			LastEpoch:     st.ring.LastIndex(),
			WindowEpsilon: st.ring.WindowEpsilon(),
			EpsilonSpent:  d.Ledger.Spent(),
		}
		st.mu.Unlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	seq := batch.batchSeq
	if seq == 0 {
		seq = st.lastBatch + 1
	}
	if nRecords > 0 {
		if st.journal != nil {
			// Durability before acknowledgment: the batch's journal frame is
			// fsynced before the response (or even the in-memory apply), so a
			// crash at any later instant replays exactly this batch. The
			// append and its inner fsync are recorded as spans and fed to
			// the stage histograms — on a saturated disk this is where
			// ingest latency lives.
			tr := obs.FromContext(ctx)
			appendSpan := tr.Begin("ingest.append")
			err := st.journal.Append(seq, pts, seqs, tr)
			appendSpan.End()
			if err != nil {
				st.mu.Unlock()
				writeError(w, http.StatusServiceUnavailable, &APIError{Code: CodeStoreUnavailable,
					Message: "journaling ingest batch: " + err.Error()})
				return
			}
			for _, sp := range tr.Spans() {
				switch sp.Name {
				case "ingest.append", "journal.fsync":
					s.metrics.stageHist(sp.Name).Observe(sp.Dur.Seconds())
				}
			}
		}
		if err := st.applyLocked(pts, seqs); err != nil {
			// Unreachable after validateBatch; surfaced defensively.
			st.mu.Unlock()
			writeErrorFrom(w, err)
			return
		}
		st.lastBatch = seq
		st.batches.Add(1)
		st.records.Add(uint64(nRecords))
		s.metrics.recordIngest(nRecords)
	}

	resp := ingestResponse{BatchSeq: seq, Applied: nRecords}
	if batch.seal || (st.cfg.SealEvery > 0 && st.buf.Pending() >= st.cfg.SealEvery) {
		if err := s.buildGate.acquire(ctx); err != nil {
			s.metrics.recordAdmissionReject(err)
			resp.SealError = "seal not admitted: " + err.Error()
		} else {
			rel, epoch, err := s.sealStreamLocked(ctx, d)
			s.buildGate.release()
			switch {
			case err == nil:
				resp.Sealed, resp.Epoch, resp.ReleaseID = true, epoch, rel.ID
			case errors.Is(err, privtree.ErrEmptyEpoch):
				// Nothing pending: an explicit seal of an empty buffer is a
				// no-op, not an error — the window is simply unchanged.
			default:
				resp.SealError = err.Error()
			}
		}
	}
	resp.Pending = st.buf.Pending() + st.frozenN
	resp.LastEpoch = st.ring.LastIndex()
	resp.WindowEpsilon = st.ring.WindowEpsilon()
	st.mu.Unlock()
	resp.EpsilonSpent = d.Ledger.Spent()
	writeJSON(w, http.StatusOK, resp)
}
