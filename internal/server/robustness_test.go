package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"privtree"
	"privtree/internal/testhooks"
)

// These tests cover the overload plane: admission gates shed saturating
// load as structured 429s with Retry-After, per-route deadlines surface as
// 503 deadline_exceeded with the mid-build debit refunded, and Close
// drains in-flight work before closing the stores under it.

// holdServerBuilds blocks every release build at its start until the
// returned release func runs, signalling entry on entered. It drives the
// gates deterministically: a held build occupies exactly one build slot.
func holdServerBuilds(t *testing.T, entered chan<- string) (release func()) {
	t.Helper()
	block := make(chan struct{})
	h := func(fp string) {
		select {
		case entered <- fp:
		default:
		}
		<-block
	}
	testhooks.BuildStart.Store(&h)
	t.Cleanup(func() { testhooks.BuildStart.Store(nil) })
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(block)
		}
	}
}

// post sends a JSON body and returns the full response with its decoded
// error envelope (nil for 2xx), closing the body.
func post(t *testing.T, client *http.Client, url string, body any) (*http.Response, *APIError) {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		return resp, nil
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("POST %s: status %d with undecodable error envelope: %v", url, resp.StatusCode, err)
	}
	return resp, env.Error
}

// rows converts test points to the wire shape of registerRequest.Points.
func rows(pts []privtree.Point) [][]float64 {
	out := make([][]float64, len(pts))
	for i, p := range pts {
		out[i] = []float64(p)
	}
	return out
}

func TestGateAdmitQueueShed(t *testing.T) {
	g := newGate(2, 1)
	ctx := t.Context()
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.acquire(ctx); err != nil {
		t.Fatal(err)
	}
	// Slots full: a third acquire parks in the queue.
	queued := make(chan error, 1)
	go func() { queued <- g.acquire(ctx) }()
	waitFor(t, func() bool { return g.queued.Load() == 1 })
	// Queue full too: a fourth is shed immediately.
	if err := g.acquire(ctx); err != errShed {
		t.Fatalf("saturated gate: got %v, want errShed", err)
	}
	if got := g.Inflight(); got != 2 {
		t.Fatalf("inflight = %d, want 2", got)
	}
	// Freeing a slot admits the queued waiter.
	g.release()
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	if got := g.Inflight(); got != 2 {
		t.Fatalf("inflight after handoff = %d, want 2", got)
	}
	g.release()
	g.release()
	if got := g.Inflight(); got != 0 {
		t.Fatalf("inflight after releases = %d, want 0 (leak)", got)
	}
	if !g.drain(time.Now().Add(time.Second)) {
		t.Fatal("idle gate failed to drain")
	}
	if err := g.acquire(ctx); err != errDraining {
		t.Fatalf("drained gate admit: got %v, want errDraining", err)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerShedsUnderSaturation pins the build plane to one slot and a
// one-deep queue, holds a build open, and verifies the third concurrent
// build is refused crisply: HTTP 429, code "overloaded", Retry-After set —
// and that once the slot frees, held and queued builds both land.
func TestServerShedsUnderSaturation(t *testing.T) {
	s := mustNew(t, Options{MaxConcurrentBuilds: 1, AdmissionQueue: 1, Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "shed", "epsilon": 10.0, "points": rows(testPoints(300)),
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}
	relURL := ts.URL + "/v1/datasets/shed/releases"

	entered := make(chan string, 1)
	release := holdServerBuilds(t, entered)
	defer release()

	type result struct {
		status int
		code   string
	}
	results := make(chan result, 2)
	do := func(seed uint64) {
		resp, apiErr := post(t, client, relURL, ReleaseParams{Epsilon: 0.1, Seed: seed})
		code := ""
		if apiErr != nil {
			code = apiErr.Code
		}
		results <- result{resp.StatusCode, code}
	}
	go do(1)
	<-entered // build 1 holds the only slot
	go do(2)
	waitFor(t, func() bool { return s.buildGate.queued.Load() == 1 }) // build 2 parked

	// Build 3 finds slot and queue both busy: shed, never admitted.
	resp, apiErr := post(t, client, relURL, ReleaseParams{Epsilon: 0.1, Seed: 3})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated create: status %d, want 429", resp.StatusCode)
	}
	if apiErr == nil || apiErr.Code != CodeOverloaded {
		t.Fatalf("saturated create: error %+v, want code %q", apiErr, CodeOverloaded)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 response missing Retry-After header")
	}

	release()
	for i := 0; i < 2; i++ {
		if r := <-results; r.status != http.StatusCreated {
			t.Fatalf("admitted build %d: status %d code %q, want 201", i, r.status, r.code)
		}
	}
	waitFor(t, func() bool { return s.buildGate.Inflight() == 0 })
	if got := s.metrics.shedTotal.Value(); got != 1 {
		t.Fatalf("shed_total = %d, want 1", got)
	}
}

// TestServerBuildDeadline holds a build past Options.BuildTimeout and
// verifies the retry contract: 503 deadline_exceeded on the wire, and the
// dataset's spent ε back at zero because the mid-build debit was refunded.
func TestServerBuildDeadline(t *testing.T) {
	s := mustNew(t, Options{BuildTimeout: 30 * time.Millisecond, Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "slow", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil)
	if status != http.StatusCreated {
		t.Fatalf("register: status %d", status)
	}

	entered := make(chan string, 1)
	release := holdServerBuilds(t, entered)
	defer release()

	resp, apiErr := post(t, client, ts.URL+"/v1/datasets/slow/releases", ReleaseParams{Epsilon: 0.5, Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timed-out build: status %d, want 503", resp.StatusCode)
	}
	if apiErr == nil || apiErr.Code != CodeDeadlineExceeded {
		t.Fatalf("timed-out build: error %+v, want code %q", apiErr, CodeDeadlineExceeded)
	}
	var info struct {
		EpsilonSpent float64 `json:"epsilon_spent"`
	}
	doJSON(t, client, "GET", ts.URL+"/v1/datasets/slow", nil, &info)
	if info.EpsilonSpent != 0 {
		t.Fatalf("spent ε after refunded deadline = %v, want 0", info.EpsilonSpent)
	}
	if got := s.metrics.deadlineTotal.Value(); got == 0 {
		t.Fatal("deadline_exceeded_total not incremented")
	}
	release()
	// The retry now succeeds and pays the only debit.
	waitFor(t, func() bool { return s.buildGate.Inflight() == 0 })
	resp, apiErr = post(t, client, ts.URL+"/v1/datasets/slow/releases", ReleaseParams{Epsilon: 0.5, Seed: 1})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("retry after deadline: status %d (%+v), want 201", resp.StatusCode, apiErr)
	}
	doJSON(t, client, "GET", ts.URL+"/v1/datasets/slow", nil, &info)
	if info.EpsilonSpent != 0.5 {
		t.Fatalf("spent ε after retry = %v, want 0.5 (exactly one debit)", info.EpsilonSpent)
	}
}

// TestServerQueryDeadline gives the batch plane a deadline that has
// already passed and verifies the fan-out is abandoned with a structured
// 503 instead of serving a partially-answered batch.
func TestServerQueryDeadline(t *testing.T) {
	s := mustNew(t, Options{QueryTimeout: time.Nanosecond, Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "q", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil)
	var rel struct {
		ReleaseID string `json:"release_id"`
	}
	status := doJSON(t, client, "POST", ts.URL+"/v1/datasets/q/releases", ReleaseParams{Epsilon: 0.5}, &rel)
	if status != http.StatusCreated {
		t.Fatalf("release: status %d", status)
	}
	queries := make([][]float64, 64)
	for i := range queries {
		queries[i] = []float64{0, 0, 1, 1}
	}
	resp, apiErr := post(t, client, fmt.Sprintf("%s/v1/datasets/q/releases/%s/query", ts.URL, rel.ReleaseID),
		map[string]any{"queries": queries})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired batch: status %d, want 503", resp.StatusCode)
	}
	if apiErr == nil || apiErr.Code != CodeDeadlineExceeded {
		t.Fatalf("expired batch: error %+v, want code %q", apiErr, CodeDeadlineExceeded)
	}
}

// TestServerCloseDrainsUnderLoad is the shutdown-under-load contract:
// Close stops admitting immediately (503 shutting_down), waits for the
// in-flight build, and only then closes the stores — so the held build
// still commits and acknowledges normally.
func TestServerCloseDrainsUnderLoad(t *testing.T) {
	s := mustNew(t, Options{MaxConcurrentBuilds: 2, DrainTimeout: 5 * time.Second, Workers: 1, DataDir: t.TempDir()})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "drain", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil)

	entered := make(chan string, 1)
	release := holdServerBuilds(t, entered)
	defer release()

	inflight := make(chan int, 1)
	go func() {
		resp, _ := post(t, client, ts.URL+"/v1/datasets/drain/releases", ReleaseParams{Epsilon: 0.25, Seed: 9})
		inflight <- resp.StatusCode
	}()
	<-entered

	closed := make(chan error, 1)
	go func() { closed <- s.Close() }()
	waitFor(t, func() bool { return s.buildGate.draining.Load() })

	// New work during the drain is refused with the shutdown code.
	resp, apiErr := post(t, client, ts.URL+"/v1/datasets/drain/releases", ReleaseParams{Epsilon: 0.25, Seed: 10})
	if resp.StatusCode != http.StatusServiceUnavailable || apiErr == nil || apiErr.Code != CodeShuttingDown {
		t.Fatalf("create during drain: status %d error %+v, want 503 %q", resp.StatusCode, apiErr, CodeShuttingDown)
	}

	select {
	case err := <-closed:
		t.Fatalf("Close returned before in-flight build finished: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	release()
	if status := <-inflight; status != http.StatusCreated {
		t.Fatalf("in-flight build during drain: status %d, want 201", status)
	}
	if err := <-closed; err != nil {
		t.Fatalf("Close after clean drain: %v", err)
	}
	if got := s.metrics.drainRejects.Value(); got != 1 {
		t.Fatalf("draining_rejects_total = %d, want 1", got)
	}
}

// TestServerCloseDrainTimeout verifies Close gives up after DrainTimeout
// when a build refuses to finish, reporting the straggler instead of
// hanging shutdown forever.
func TestServerCloseDrainTimeout(t *testing.T) {
	s := mustNew(t, Options{DrainTimeout: 40 * time.Millisecond, Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "stuck", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil)

	entered := make(chan string, 1)
	release := holdServerBuilds(t, entered)

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := post(t, client, ts.URL+"/v1/datasets/stuck/releases", ReleaseParams{Epsilon: 0.25, Seed: 1})
		resp.Body.Close()
	}()
	<-entered
	if err := s.Close(); err == nil {
		t.Fatal("Close with a wedged build returned nil, want drain-timeout error")
	}
	release()
	<-done
}

// TestMetricsOverloadFields asserts the /metricsz document carries the
// overload-plane gauges and counters, and that they reflect traffic.
func TestMetricsOverloadFields(t *testing.T) {
	s := mustNew(t, Options{QueryTimeout: time.Nanosecond, Workers: 1})
	ts := httptest.NewServer(s)
	defer ts.Close()
	client := ts.Client()
	doJSON(t, client, "POST", ts.URL+"/v1/datasets", map[string]any{
		"name": "m", "epsilon": 1.0, "points": rows(testPoints(300)),
	}, nil)
	var rel struct {
		ReleaseID string `json:"release_id"`
	}
	doJSON(t, client, "POST", ts.URL+"/v1/datasets/m/releases", ReleaseParams{Epsilon: 0.5}, &rel)
	post(t, client, fmt.Sprintf("%s/v1/datasets/m/releases/%s/query", ts.URL, rel.ReleaseID),
		map[string]any{"queries": [][]float64{{0, 0, 1, 1}}})

	var doc map[string]any
	if status := doJSON(t, client, "GET", ts.URL+"/metricsz", nil, &doc); status != http.StatusOK {
		t.Fatalf("/metricsz: status %d", status)
	}
	for _, key := range []string{
		"builds_in_flight", "batches_in_flight", "shed_total",
		"deadline_exceeded_total", "draining_rejects_total", "retryable_errors_total",
	} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("/metricsz missing %q", key)
		}
	}
	if doc["deadline_exceeded_total"].(float64) < 1 {
		t.Fatalf("deadline_exceeded_total = %v, want >= 1 after expired batch", doc["deadline_exceeded_total"])
	}
	if doc["builds_in_flight"].(float64) != 0 || doc["batches_in_flight"].(float64) != 0 {
		t.Fatalf("in-flight gauges nonzero at rest: %v / %v", doc["builds_in_flight"], doc["batches_in_flight"])
	}
}
