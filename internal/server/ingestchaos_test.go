package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privtree/internal/faultnet"
)

// Ingestion chaos sweep: a retrying writer pushes batches into a
// streaming dataset through a seeded fault-injection proxy that resets
// connections, truncates and drops acknowledgments, and throttles the
// link. Lost acks are the dangerous shape — the server applied the batch
// but the writer must retry blind — so the contract under chaos is the
// batch-sequence idempotency guarantee end to end:
//
//   - every batch applies EXACTLY once: after the sweep the pending
//     buffer holds precisely rows × batches, no loss and no double
//     apply, however many retries the faults forced;
//   - the sealed epoch's accounting is exact (one debit of ε_epoch);
//   - a replica syncing from the battered primary converges to a
//     bit-identical served window.
func TestIngestChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a multi-second fault schedule")
	}
	primary := mustNew(t, Options{DataDir: t.TempDir(), Workers: 1})
	tsP := httptest.NewServer(primary)
	defer tsP.Close()
	defer primary.Close()
	direct := &http.Client{Timeout: 30 * time.Second}

	if code := doJSON(t, direct, "POST", tsP.URL+"/v1/datasets",
		streamRegisterBody("chaos-stream", nil), nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}

	// The writer talks through the proxy; keep-alives off so every request
	// rolls a fresh fault. The 1s timeout unwedges blackholes/partitions.
	proxy, err := faultnet.New(strings.TrimPrefix(tsP.URL, "http://"), faultnet.Options{
		Seed: 91, LatencyProb: 0.1, ResetProb: 0.15, TruncateProb: 0.15,
		PartitionProb: 0.1, ThrottleProb: 0.05, ThrottleBytesPerSec: 64 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	chaos := &http.Client{
		Transport: &http.Transport{DisableKeepAlives: true},
		Timeout:   1 * time.Second,
	}

	// Each batch retries until an acknowledgment arrives. A retry whose
	// original was applied-but-unacked must come back as a duplicate with
	// nothing applied — that, not luck, is what keeps the count exact.
	const nBatches, rows = 24, 10
	var retries, duplicates int
	for seq := uint64(1); seq <= nBatches; seq++ {
		body, _ := json.Marshal(map[string]any{
			"batch_seq": seq, "points": streamCrashBatch(seq),
		})
		var ack ingestResponse
		for attempt := 0; ; attempt++ {
			if attempt > 200 {
				t.Fatalf("batch %d: no acknowledgment after %d attempts", seq, attempt)
			}
			resp, err := chaos.Post("http://"+proxy.Addr()+"/v1/datasets/chaos-stream/ingest",
				"application/json", bytes.NewReader(body))
			if err != nil {
				retries++
				continue
			}
			decodeErr := json.NewDecoder(resp.Body).Decode(&ack)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || decodeErr != nil {
				// Truncated replies decode-fail; anything else is a real bug.
				if resp.StatusCode != http.StatusOK && decodeErr == nil {
					t.Fatalf("batch %d: HTTP %d", seq, resp.StatusCode)
				}
				retries++
				continue
			}
			break
		}
		if ack.Duplicate {
			duplicates++
			if ack.Applied != 0 {
				t.Fatalf("batch %d: duplicate ack claims %d rows applied", seq, ack.Applied)
			}
		} else if ack.Applied != rows {
			t.Fatalf("batch %d: applied %d rows, want %d", seq, ack.Applied, rows)
		}
	}
	c := proxy.Counts()
	t.Logf("chaos: %d conns (%d reset, %d truncate, %d blackhole, %d partition), %d retries, %d duplicate acks",
		c.Conns, c.Reset, c.Truncate, c.Blackhole, c.Partition, retries, duplicates)
	if c.Reset+c.Truncate+c.Blackhole+c.Partition == 0 {
		t.Fatal("the fault schedule never fired; the sweep proved nothing")
	}

	// Exactly-once, measured: the pending buffer holds every row once.
	var info struct {
		Stream *streamInfoJSON `json:"stream"`
	}
	if code := doJSON(t, direct, "GET", tsP.URL+"/v1/datasets/chaos-stream", nil, &info); code != 200 || info.Stream == nil {
		t.Fatalf("info: %d", code)
	}
	if info.Stream.Pending != nBatches*rows {
		t.Fatalf("pending %d rows after chaos sweep, want exactly %d (lost or double-applied batches)",
			info.Stream.Pending, nBatches*rows)
	}

	// Seal (direct — the chaos was on the write path) and check accounting.
	var sealAck ingestResponse
	if code := doJSON(t, direct, "POST", tsP.URL+"/v1/datasets/chaos-stream/ingest",
		map[string]any{"seal": true}, &sealAck); code != 200 || !sealAck.Sealed || sealAck.Epoch != 1 {
		t.Fatalf("seal: %d %+v", code, sealAck)
	}
	if sealAck.EpsilonSpent != 0.125 || sealAck.WindowEpsilon != 0.125 {
		t.Fatalf("sealed accounting: spent=%v window=%v, want 0.125/0.125",
			sealAck.EpsilonSpent, sealAck.WindowEpsilon)
	}

	// A replica syncing from the primary serves the same window
	// bit-identically.
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: tsP.URL, ReplicaPoll: 10 * time.Millisecond,
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()
	defer replica.Close()
	waitUntil(t, "replica to reach the sealed epoch", func() bool {
		var ri struct {
			Stream *streamInfoJSON `json:"stream"`
		}
		code := doJSON(t, direct, "GET", tsR.URL+"/v1/datasets/chaos-stream", nil, &ri)
		return code == 200 && ri.Stream != nil && ri.Stream.LastEpoch == 1
	})
	q := map[string]any{"queries": streamCrashQueries}
	digest := func(base string) string {
		var out struct {
			Counts []float64 `json:"counts"`
		}
		if code := doJSON(t, direct, "POST", base+"/v1/datasets/chaos-stream/releases/latest/query", q, &out); code != 200 {
			t.Fatalf("latest on %s: %d", base, code)
		}
		return fmt.Sprintf("%x", out.Counts)
	}
	if dp, dr := digest(tsP.URL), digest(tsR.URL); dp != dr {
		t.Fatalf("replica window diverges: primary %s, replica %s", dp, dr)
	}
}
