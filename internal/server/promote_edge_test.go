package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"privtree/internal/faultnet"
)

// TestPromoteMidCatchUp promotes a replica that is still pulling the
// primary's tail through a throttled link. The promotion must succeed on
// whatever prefix has been applied — a prefix is always a consistent
// ledger state — and the node must immediately act as a full primary:
// accept writes, continue the budget exactly from the applied prefix,
// and keep serving the releases it has.
func TestPromoteMidCatchUp(t *testing.T) {
	primary := mustNew(t, Options{DataDir: t.TempDir(), Workers: 1})
	tsP := httptest.NewServer(primary)
	defer tsP.Close()
	defer primary.Close()
	client := tsP.Client()

	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets", map[string]any{
		"name": "lag", "epsilon": 4.0,
		"synthetic": map[string]any{"generator": "road", "n": 4000, "seed": 3},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register: %d", code)
	}
	var rel1 releaseResponse
	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets/lag/releases",
		map[string]any{"epsilon": 0.25, "seed": 1}, &rel1); code != http.StatusCreated {
		t.Fatalf("release 1: %d", code)
	}

	// The replica pulls through a bandwidth throttle, so shipping the
	// second release's artifact takes long enough to promote mid-stream.
	proxy, err := faultnet.New(strings.TrimPrefix(tsP.URL, "http://"), faultnet.Options{
		Seed: 11, ThrottleProb: 1, ThrottleBytesPerSec: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://" + proxy.Addr(), ReplicaPoll: 10 * time.Millisecond,
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()
	defer replica.Close()

	// Wait only for release 1 to apply, then pile a bigger release onto
	// the primary and promote immediately — its artifact is still
	// dribbling through the throttle.
	waitUntil(t, "release 1 to replicate", func() bool {
		dR, ok := replica.Registry().Get("lag")
		return ok && dR.Ledger.Spent() >= 0.25
	})
	if code := doJSON(t, client, "POST", tsP.URL+"/v1/datasets/lag/releases",
		map[string]any{"epsilon": 0.5, "seed": 2}, nil); code != http.StatusCreated {
		t.Fatalf("release 2: %d", code)
	}
	var promoted struct {
		Promoted     bool              `json:"promoted"`
		WriterEpochs map[string]uint64 `json:"writer_epochs"`
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/admin/promote", map[string]any{}, &promoted); code != http.StatusOK {
		t.Fatalf("promote mid-catch-up: %d", code)
	}
	if !promoted.Promoted || promoted.WriterEpochs["lag"] != 1 {
		t.Fatalf("promotion response: %+v", promoted)
	}

	// The applied prefix is one of the consistent ledger states: release 1
	// only, release 1 + release 2's debit (commit not yet applied), or
	// both releases. Anything else means a record was half-applied.
	dR, _ := replica.Registry().Get("lag")
	before := dR.Ledger.Spent()
	if before != 0.25 && before != 0.75 {
		t.Fatalf("promoted node spent = %v, want a prefix state (0.25 or 0.75)", before)
	}

	// Full primary duties, immediately: the budget continues exactly from
	// the applied prefix, reads keep serving, and registration works.
	var rel3 releaseResponse
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/datasets/lag/releases",
		map[string]any{"epsilon": 0.125, "seed": 9}, &rel3); code != http.StatusCreated {
		t.Fatalf("post-promotion release: %d", code)
	}
	if got, want := dR.Ledger.Spent(), before+0.125; got != want {
		t.Fatalf("spent after post-promotion release = %v, want %v", got, want)
	}
	if got := queryOne(t, client, tsR.URL+"/v1/datasets/lag/releases/"+rel1.Release.ID+"/query"); got < 0 {
		t.Fatalf("replicated release query = %v", got)
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/datasets", map[string]any{
		"name": "fresh", "epsilon": 1.0, "points": [][]float64{{0.5, 0.5}},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register on promoted node: %d", code)
	}
}

// TestPromoteNeverCaughtUp covers the disaster case: the primary died
// before this replica ever completed a sync pass. The operator promotes
// anyway, accepting the data loss — the node must come up as an empty,
// working primary rather than staying wedged behind a readiness gate.
func TestPromoteNeverCaughtUp(t *testing.T) {
	replica := mustNew(t, Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://127.0.0.1:1", ReplicaPoll: 5 * time.Millisecond,
	})
	tsR := httptest.NewServer(replica)
	defer tsR.Close()
	defer replica.Close()
	client := tsR.Client()

	if status, _ := errCode(t, client, "GET", tsR.URL+"/readyz", nil); status != http.StatusServiceUnavailable {
		t.Fatalf("readyz before promote = %d, want 503", status)
	}
	var promoted struct {
		Promoted bool `json:"promoted"`
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/admin/promote", map[string]any{}, &promoted); code != http.StatusOK || !promoted.Promoted {
		t.Fatalf("promote of never-caught-up replica: %d %+v", code, promoted)
	}
	var ready struct {
		Ready bool   `json:"ready"`
		Role  string `json:"role"`
	}
	if code := doJSON(t, client, "GET", tsR.URL+"/readyz", nil, &ready); code != http.StatusOK || ready.Role != "primary" {
		t.Fatalf("readyz after promote = %d %+v", code, ready)
	}
	if code := doJSON(t, client, "POST", tsR.URL+"/v1/datasets", map[string]any{
		"name": "reborn", "epsilon": 1.0, "points": [][]float64{{0.25, 0.75}},
	}, nil); code != http.StatusCreated {
		t.Fatalf("register after disaster promote: %d", code)
	}
}
