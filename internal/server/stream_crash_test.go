package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http/httptest"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"

	"privtree/internal/store"
)

// Streaming crash harness. The parent re-executes this test binary as a
// child that registers a streaming dataset, arms a crash hook at one
// durability boundary (every store fault point plus the two ingest-
// journal sync points), and ingests 8 batches sealing every second one.
// The hook SIGKILLs the child mid-operation. The child acks each batch,
// seal, and latest-window digest on stdout only AFTER the HTTP response
// — i.e. after the fsync that made the effect durable.
//
// The parent then recovers the directory in-process and checks the
// streaming crash contract:
//
//   - every acknowledged batch survives: resending its sequence number
//     is acked as a duplicate (a lost batch would be re-applied);
//   - the recovered window is at least the acknowledged one, and when it
//     matches an acknowledged seal, the served latest answers are
//     bit-identical to the acknowledged digest;
//   - spent ε never under-counts acknowledged seals;
//   - resuming the workload converges to the exact no-crash control
//     state: same final epoch, same window ε, bit-identical latest
//     answers, and spent ε equal to epochs × ε_epoch plus at most one
//     dangling debit (a crash between a durable debit and its commit
//     over-counts — the safe direction for a privacy ledger).

const (
	streamCrashChildEnv = "PRIVTREE_STREAM_CRASH_CHILD"
	streamCrashDirEnv   = "PRIVTREE_STREAM_CRASH_DIR"
	streamCrashPointEnv = "PRIVTREE_STREAM_CRASH_POINT"
	streamCrashHitEnv   = "PRIVTREE_STREAM_CRASH_HIT"

	streamCrashBatches  = 8 // seal every 2nd → 4 epochs
	streamCrashRows     = 10
	streamCrashEpochEps = 0.125 // exactly representable: float comparisons are equality
	streamCrashWindow   = 2
)

// streamCrashBatch derives batch seq's rows deterministically, so the
// child, the recovery continuation, and the control run all ingest
// identical data.
func streamCrashBatch(seq uint64) [][]float64 {
	rng := rand.New(rand.NewPCG(seq, 0xC0FFEE))
	rows := make([][]float64, streamCrashRows)
	for i := range rows {
		rows[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return rows
}

var streamCrashQueries = [][]float64{
	{0, 0, 1, 1},
	{0.25, 0.25, 0.75, 0.75},
	{0.1, 0.55, 0.45, 0.95},
}

// streamCrashServe runs one request against the in-process server and
// decodes the JSON reply, returning the HTTP status.
func streamCrashServe(s *Server, method, path string, body, out any) (int, error) {
	var rdr *bytes.Reader
	if body != nil {
		blob, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rdr = bytes.NewReader(blob)
	} else {
		rdr = bytes.NewReader(nil)
	}
	req := httptest.NewRequest(method, path, rdr)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if out != nil && rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			return rec.Code, err
		}
	}
	return rec.Code, nil
}

func streamCrashRegister(s *Server) (int, error) {
	return streamCrashServe(s, "POST", "/v1/datasets", map[string]any{
		"name": "sw", "epsilon": 1.0,
		"domain": map[string]any{"lo": []float64{0, 0}, "hi": []float64{1, 1}},
		"stream": map[string]any{
			"epoch_epsilon": streamCrashEpochEps, "window": streamCrashWindow, "seed": 9,
		},
	}, nil)
}

// streamCrashDigest queries the latest window and joins the counts with
// full float precision — bit-identical answers ⇒ identical digests.
func streamCrashDigest(s *Server) (string, int, error) {
	var out struct {
		Counts []float64 `json:"counts"`
	}
	code, err := streamCrashServe(s, "POST", "/v1/datasets/sw/releases/latest/query",
		map[string]any{"queries": streamCrashQueries}, &out)
	if err != nil || code != 200 {
		return "", code, err
	}
	parts := make([]string, len(out.Counts))
	for i, c := range out.Counts {
		parts[i] = strconv.FormatFloat(c, 'g', 17, 64)
	}
	return strings.Join(parts, ","), code, nil
}

// TestStreamCrashHelper is the child body; it skips unless re-executed
// by TestStreamCrashRecovery.
func TestStreamCrashHelper(t *testing.T) {
	if os.Getenv(streamCrashChildEnv) != "1" {
		t.Skip("stream-crash child process only")
	}
	dir := os.Getenv(streamCrashDirEnv)
	point := os.Getenv(streamCrashPointEnv)
	hit, _ := strconv.Atoi(os.Getenv(streamCrashHitEnv))

	die := func(format string, args ...any) {
		fmt.Printf("CHILD-ERROR "+format+"\n", args...)
		os.Exit(1)
	}
	s, err := New(Options{DataDir: dir, Workers: 1})
	if err != nil {
		die("open: %v", err)
	}
	// Register BEFORE arming the hook: the fault points under test are
	// the ingest/seal boundaries, not dataset creation.
	if code, err := streamCrashRegister(s); err != nil || code != 201 {
		die("register: code=%d err=%v", code, err)
	}
	fmt.Println("ACK registered")

	var seen atomic.Int64
	hook := func(p string) {
		if p != point {
			return
		}
		if int(seen.Add(1)) == hit {
			// A real crash: no flushes, no cleanup, straight to SIGKILL.
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	}
	if strings.HasPrefix(point, "journal.") {
		ingestCrashHook = hook
		defer func() { ingestCrashHook = nil }()
	} else {
		store.SetCrashHook(hook)
		defer store.SetCrashHook(nil)
	}

	for seq := uint64(1); seq <= streamCrashBatches; seq++ {
		var resp ingestResponse
		code, err := streamCrashServe(s, "POST", "/v1/datasets/sw/ingest", map[string]any{
			"batch_seq": seq, "points": streamCrashBatch(seq), "seal": seq%2 == 0,
		}, &resp)
		if err != nil || code != 200 {
			die("ingest %d: code=%d err=%v", seq, code, err)
		}
		// Stdout is unbuffered: the ack is in the parent's pipe before the
		// next call can crash us.
		fmt.Printf("ACK batch %d\n", seq)
		if resp.SealError != "" {
			die("seal after batch %d: %s", seq, resp.SealError)
		}
		if resp.Sealed {
			fmt.Printf("ACK seal %d %.17g\n", resp.Epoch, resp.EpsilonSpent)
			dig, code, err := streamCrashDigest(s)
			if err != nil || code != 200 {
				die("latest after epoch %d: code=%d err=%v", resp.Epoch, code, err)
			}
			fmt.Printf("ACK latest %d %s\n", resp.Epoch, dig)
		}
	}
	fmt.Println("DONE")
}

// streamCrashAcks is the child's acknowledged state.
type streamCrashAcks struct {
	batches   map[uint64]bool   // acked batch sequences
	lastEpoch uint64            // newest acked sealed epoch
	lastSpent float64           // spent ε acked with that seal
	digests   map[uint64]string // latest digest acked per epoch
	done      bool
}

func parseStreamAcks(t *testing.T, out []byte) streamCrashAcks {
	t.Helper()
	acks := streamCrashAcks{batches: make(map[uint64]bool), digests: make(map[uint64]string)}
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		switch {
		case strings.HasPrefix(line, "CHILD-ERROR"):
			t.Fatalf("child reported an unexpected error: %s", line)
		case line == "DONE":
			acks.done = true
		case len(fields) == 3 && fields[0] == "ACK" && fields[1] == "batch":
			seq, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				t.Fatalf("bad ACK line %q: %v", line, err)
			}
			acks.batches[seq] = true
		case len(fields) == 4 && fields[0] == "ACK" && fields[1] == "seal":
			epoch, err1 := strconv.ParseUint(fields[2], 10, 64)
			spent, err2 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil {
				t.Fatalf("bad ACK line %q", line)
			}
			acks.lastEpoch, acks.lastSpent = epoch, spent
		case len(fields) == 4 && fields[0] == "ACK" && fields[1] == "latest":
			epoch, err := strconv.ParseUint(fields[2], 10, 64)
			if err != nil {
				t.Fatalf("bad ACK line %q: %v", line, err)
			}
			acks.digests[epoch] = fields[3]
		}
	}
	return acks
}

// streamCrashResume drives the full 8-batch workload against s, treating
// duplicates as already-durable work: when a seal-carrying batch dedups
// but its epoch has not sealed, an explicit empty seal recovers the
// boundary. Returns which sequences were acked as duplicates.
func streamCrashResume(t *testing.T, s *Server) map[uint64]bool {
	t.Helper()
	dups := make(map[uint64]bool)
	for seq := uint64(1); seq <= streamCrashBatches; seq++ {
		var resp ingestResponse
		code, err := streamCrashServe(s, "POST", "/v1/datasets/sw/ingest", map[string]any{
			"batch_seq": seq, "points": streamCrashBatch(seq), "seal": seq%2 == 0,
		}, &resp)
		if err != nil || code != 200 {
			t.Fatalf("resume ingest %d: code=%d err=%v", seq, code, err)
		}
		if resp.SealError != "" {
			t.Fatalf("resume seal after batch %d: %s", seq, resp.SealError)
		}
		if resp.Duplicate {
			dups[seq] = true
			if wantEpoch := seq / 2; seq%2 == 0 && resp.LastEpoch < wantEpoch {
				// The batch was durable before the crash but its seal was not:
				// recover the epoch boundary explicitly.
				code, err := streamCrashServe(s, "POST", "/v1/datasets/sw/ingest",
					map[string]any{"seal": true}, &resp)
				if err != nil || code != 200 || resp.SealError != "" {
					t.Fatalf("resume forced seal %d: code=%d err=%v sealErr=%q", wantEpoch, code, err, resp.SealError)
				}
				if !resp.Sealed || resp.Epoch != wantEpoch {
					t.Fatalf("forced seal produced epoch %d (sealed=%v), want %d", resp.Epoch, resp.Sealed, wantEpoch)
				}
			}
		}
	}
	return dups
}

func streamCrashInfo(t *testing.T, s *Server) (spent float64, st streamInfoJSON) {
	t.Helper()
	var info struct {
		EpsilonSpent float64         `json:"epsilon_spent"`
		Stream       *streamInfoJSON `json:"stream"`
	}
	code, err := streamCrashServe(s, "GET", "/v1/datasets/sw", nil, &info)
	if err != nil || code != 200 || info.Stream == nil {
		t.Fatalf("dataset info: code=%d err=%v stream=%v", code, err, info.Stream)
	}
	return info.EpsilonSpent, *info.Stream
}

// TestStreamCrashRecovery SIGKILLs a child mid-seal at every durability
// boundary and asserts the recovered window, spent ε, and served latest
// match the acknowledged state exactly, then resumes the workload to the
// exact no-crash control state.
func TestStreamCrashRecovery(t *testing.T) {
	if goos := os.Getenv("GOOS"); goos != "" && goos != "linux" {
		t.Skip("SIGKILL harness is POSIX-only")
	}

	// Control: the same workload with no crash, for the exact final state.
	control := mustNew(t, Options{DataDir: t.TempDir(), Workers: 1})
	defer control.Close()
	if code, err := streamCrashRegister(control); err != nil || code != 201 {
		t.Fatalf("control register: code=%d err=%v", code, err)
	}
	streamCrashResume(t, control)
	controlDigest, code, err := streamCrashDigest(control)
	if err != nil || code != 200 {
		t.Fatalf("control digest: code=%d err=%v", code, err)
	}
	controlSpent, controlStream := streamCrashInfo(t, control)
	wantEpochs := uint64(streamCrashBatches / 2)
	if controlStream.LastEpoch != wantEpochs || controlSpent != float64(wantEpochs)*streamCrashEpochEps {
		t.Fatalf("control state: epoch=%d spent=%v", controlStream.LastEpoch, controlSpent)
	}

	points := append(append([]string{}, store.CrashPoints...), "journal.before_sync", "journal.after_sync")
	for _, point := range points {
		for _, hit := range []int{1, 2, 3} {
			point, hit := point, hit
			t.Run(fmt.Sprintf("%s/hit%d", point, hit), func(t *testing.T) {
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run", "^TestStreamCrashHelper$", "-test.v")
				cmd.Env = append(os.Environ(),
					streamCrashChildEnv+"=1",
					streamCrashDirEnv+"="+dir,
					streamCrashPointEnv+"="+point,
					streamCrashHitEnv+"="+strconv.Itoa(hit),
				)
				var stdout, stderr bytes.Buffer
				cmd.Stdout, cmd.Stderr = &stdout, &stderr
				runErr := cmd.Run()
				acks := parseStreamAcks(t, stdout.Bytes())
				if runErr == nil && !acks.done {
					t.Fatalf("child exited cleanly without finishing\nstdout:\n%s\nstderr:\n%s",
						stdout.String(), stderr.String())
				}
				if runErr != nil {
					ee, ok := runErr.(*exec.ExitError)
					if !ok || !ee.ProcessState.Exited() && ee.ProcessState.Sys().(syscall.WaitStatus).Signal() != syscall.SIGKILL {
						t.Fatalf("child died abnormally: %v\nstdout:\n%s\nstderr:\n%s",
							runErr, stdout.String(), stderr.String())
					}
				}

				// Recover in-process from the crashed directory.
				s, err := New(Options{DataDir: dir, Workers: 1})
				if err != nil {
					t.Fatalf("recovery failed: %v", err)
				}
				defer s.Close()

				spent, st := streamCrashInfo(t, s)
				if st.LastEpoch < acks.lastEpoch {
					t.Fatalf("recovered epoch %d FORGETS acknowledged seal %d", st.LastEpoch, acks.lastEpoch)
				}
				if spent < acks.lastSpent {
					t.Fatalf("recovered spent ε=%v under-counts acknowledged %v", spent, acks.lastSpent)
				}
				if dig, ok := acks.digests[st.LastEpoch]; ok {
					got, code, err := streamCrashDigest(s)
					if err != nil || code != 200 {
						t.Fatalf("recovered latest: code=%d err=%v", code, err)
					}
					if got != dig {
						t.Fatalf("recovered latest diverges from acknowledged at epoch %d:\n got %s\nwant %s",
							st.LastEpoch, got, dig)
					}
				}

				// Resume: every acked batch must dedup (it was durable), and
				// the workload must converge to the exact control state.
				dups := streamCrashResume(t, s)
				for seq := range acks.batches {
					if !dups[seq] {
						t.Fatalf("acknowledged batch %d was LOST by recovery (re-applied on resume)", seq)
					}
				}
				finalSpent, finalStream := streamCrashInfo(t, s)
				if finalStream.LastEpoch != wantEpochs {
					t.Fatalf("resumed to epoch %d, want %d", finalStream.LastEpoch, wantEpochs)
				}
				if finalStream.WindowEpsilon != controlStream.WindowEpsilon {
					t.Fatalf("resumed window ε=%v, control %v", finalStream.WindowEpsilon, controlStream.WindowEpsilon)
				}
				// A crash between a durable debit and its commit leaves one
				// dangling debit; the retried epoch pays again. Spent is exact
				// either way — never any other value.
				if finalSpent != controlSpent && finalSpent != controlSpent+streamCrashEpochEps {
					t.Fatalf("resumed spent ε=%v, want %v (or +%v for one dangling debit)",
						finalSpent, controlSpent, streamCrashEpochEps)
				}
				gotDigest, code, err := streamCrashDigest(s)
				if err != nil || code != 200 {
					t.Fatalf("resumed latest: code=%d err=%v", code, err)
				}
				if gotDigest != controlDigest {
					t.Fatalf("resumed latest diverges from control:\n got %s\nwant %s", gotDigest, controlDigest)
				}
			})
		}
	}
}
