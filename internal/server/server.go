// Package server implements privtreed, the multi-tenant differentially
// private release server: it owns a registry of datasets, a per-dataset
// privacy-budget ledger (internal/dp.Ledger), a cache of purchased
// releases, and batched range-count / frequency query endpoints served
// from immutable released artifacts.
//
// Privacy model: the raw data enters the process once, at registration,
// with a total budget ε. Every release debits that dataset's ledger before
// the mechanism runs (sequential composition: the sum of debits bounds the
// privacy loss of everything the server ever emits about the dataset), and
// a release with parameters already purchased is served from cache without
// a new debit — re-sending released bytes is post-processing. Queries hit
// only released trees, never the raw data, so they are free.
//
// Streaming datasets (registered with a "stream" spec) start empty and
// grow through POST .../ingest; sealed epochs are released continually and
// served through the releases/latest window alias. See stream.go and
// internal/stream for the sliding-window ε accounting.
//
// # HTTP API (all JSON)
//
//	POST   /v1/datasets                          register a dataset
//	GET    /v1/datasets                          list datasets + budgets
//	GET    /v1/datasets/{name}                   one dataset + its releases
//	POST   /v1/datasets/{name}/ingest            append records to a streaming dataset
//	POST   /v1/datasets/{name}/releases          buy (or fetch cached) release
//	GET    /v1/datasets/{name}/releases/{id}     released artifact (wire JSON)
//	POST   /v1/datasets/{name}/releases/{id}/query  batched queries
//	GET    /v1/datasets/{name}/audit             ε audit plane (WAL seq + trace IDs)
//	GET    /v1/traces                            retained traces (flight recorder)
//	GET    /v1/traces/{id}                       one retained trace by X-Trace-Id
//	GET    /healthz                              liveness
//	GET    /metrics                              Prometheus text exposition
//	GET    /metricsz                             legacy JSON counters
//
// Errors use a structured envelope {"error":{"code",...}}; budget
// exhaustion is code "budget_exhausted" with the ledger arithmetic
// attached.
//
// # Observability
//
// Every request gets a trace ID (echoed as X-Trace-Id; a well-formed
// inbound X-Trace-Id is adopted, so one ID follows a request across
// retries and replication hops) whose context rides from the handler
// through Session.ReleaseContext down to the store's WAL fsyncs;
// release builds record named spans (debit, wal_debit, build, envelope,
// wal_commit), ingest records ingest.append/journal.fsync, and epoch
// seals record seal.* stages — all feeding the
// privtree_build_stage_seconds histograms and the audit endpoint.
// Completed traces land in an in-process flight recorder with
// tail-based retention (every error and every request slower than
// Options.TraceSlow, plus 1-in-Options.TraceSample of normal traffic)
// and can be fetched post-hoc from /v1/traces. Metrics live in an
// internal/obs registry — zero allocations per hot-path observation —
// served as Prometheus text on /metrics with per-route latency
// histograms carrying trace-ID exemplars on their buckets, per-dataset
// ε gauges, and Go runtime stats; requests slower than
// Options.SlowRequest are logged through Options.Logger with their span
// breakdown.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privtree"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
	"privtree/internal/obs"
	"privtree/internal/repl"
	"privtree/internal/synth"
)

// Options tunes a Server.
type Options struct {
	// Workers bounds goroutines per build and per query batch;
	// 0 means GOMAXPROCS.
	Workers int
	// MaxBodyBytes caps request bodies; 0 means 256 MiB.
	MaxBodyBytes int64
	// MaxBatch caps the number of queries per batch request; 0 means 2^20.
	MaxBatch int
	// MaxSyntheticN caps synthetic dataset cardinality; 0 means 5,000,000.
	MaxSyntheticN int
	// DataDir, when non-empty, makes the server durable: every dataset's
	// registration request, privacy ledger (write-ahead logged,
	// fsync-on-debit), and release envelopes persist under this directory,
	// and New recovers them all on startup — spent ε, audit trails, and
	// bit-identical cached artifacts survive a restart. Empty means the
	// pre-existing in-memory behavior.
	DataDir string

	// ReplicaOf, when non-empty, starts the server as a read replica of
	// the primary at this base URL (e.g. "http://10.0.0.1:8080"): it
	// pulls the primary's WAL and artifacts continuously (see
	// internal/repl), serves the full read plane from the replicated
	// state, and rejects writes with a structured read_only error until
	// promoted via POST /v1/admin/promote. Requires DataDir — a replica
	// without durable state could not survive its own restart, let alone
	// a failover.
	ReplicaOf string
	// ReplicaPoll is the interval between replication sync passes; 0
	// means the internal/repl default (250ms).
	ReplicaPoll time.Duration
	// ReplicaTimeout bounds one shipping request (dataset listing, WAL
	// pull, artifact fetch); 0 means 30s. Without it a one-way partition
	// — request delivered, response dropped — would wedge the sync loop
	// forever.
	ReplicaTimeout time.Duration
	// ReplicaHTTP overrides the HTTP client used for shipping pulls
	// (custom TLS, proxies, fault injection in tests). nil means a
	// default client honoring ReplicaTimeout.
	ReplicaHTTP *http.Client

	// BuildTimeout bounds one release build (POST .../releases), measured
	// from admission. A build that outlives it is abandoned and its debit
	// refunded durably before the 503 deadline_exceeded goes out. 0 means
	// no server-side deadline (the client's context still applies).
	BuildTimeout time.Duration
	// QueryTimeout bounds one batched-query request the same way; an
	// expired batch is abandoned mid-fan-out. 0 means no deadline.
	QueryTimeout time.Duration
	// MaxConcurrentBuilds caps release builds running at once; 0 means
	// GOMAXPROCS. Beyond the cap, up to AdmissionQueue requests wait;
	// the rest are shed with 429 overloaded + Retry-After.
	MaxConcurrentBuilds int
	// MaxConcurrentBatches caps query batches running at once; 0 means
	// GOMAXPROCS. Same queue/shed behavior as builds.
	MaxConcurrentBatches int
	// AdmissionQueue is the bounded wait queue per plane (builds and
	// batches each get their own); 0 means 2× the plane's concurrency cap.
	AdmissionQueue int
	// DrainTimeout bounds how long Close waits for in-flight builds and
	// batches before closing the registry under them; 0 means 5s.
	DrainTimeout time.Duration

	// Logger receives the server's structured logs (slow requests, and
	// anything handlers report). Nil means logs are discarded.
	Logger *slog.Logger
	// SlowRequest, when positive, logs any request slower than it at
	// Warn level with route, status, trace ID, and span breakdown.
	SlowRequest time.Duration

	// TraceRetain is the flight recorder's capacity: how many completed
	// traces are retained for post-hoc lookup via /v1/traces. 0 means 512.
	TraceRetain int
	// TraceSlow is the tail-sampling slowness threshold: every request at
	// least this slow is retained regardless of sampling. 0 means 250ms;
	// negative disables the slow class (errors are still always kept).
	TraceSlow time.Duration
	// TraceSample keeps 1-in-N of normal (fast, non-error) traffic in the
	// flight recorder. 0 means 100; 1 keeps everything.
	TraceSample int
}

// Server is the privtreed HTTP handler.
type Server struct {
	registry *Registry
	metrics  *metrics
	mux      *http.ServeMux
	opts     Options
	// regMu serializes registrations: with persistence, a registration is
	// a multi-step transaction (dataset file, store attach, insert) and
	// the name check must be authoritative, not advisory. Registration is
	// cold-path; queries and releases never touch this lock.
	regMu sync.Mutex
	// scratch pools the per-request buffers of the batched query plane, so
	// a steady query load performs O(1) allocations per batch (see
	// batchcodec.go) instead of O(1) per query.
	scratch sync.Pool
	// buildGate / batchGate are the admission controllers for the two
	// expensive planes (see admission.go): bounded concurrency, a bounded
	// wait queue, crisp 429s beyond it, and a drain switch for Close.
	buildGate *gate
	batchGate *gate
	// logger is Options.Logger, defaulted to a discard handler so
	// handlers log unconditionally.
	logger *slog.Logger
	// recorder is the flight recorder: a ring of completed traces with
	// tail-based retention, served by /v1/traces (see internal/obs).
	recorder *obs.FlightRecorder

	// Replication plane (see repl.go). isReplica flips false exactly once,
	// at promotion; fenced flips true when a higher-epoch writer fences
	// this node. syncer is non-nil iff the server started with ReplicaOf;
	// promoteMu serializes promotion, syncMu guards the stop handshake.
	isReplica  atomic.Bool
	fenced     atomic.Bool
	syncer     *repl.Syncer
	syncCancel context.CancelFunc
	syncDone   chan struct{}
	promoteMu  sync.Mutex
	syncMu     sync.Mutex
}

// New returns a ready-to-serve Server. With Options.DataDir set it first
// recovers every persisted dataset: the registration request is replayed
// (synthetic data regenerates deterministically from its seed), the
// ledger's spent ε and audit trail are rebuilt from the write-ahead log,
// and committed releases are served again — same IDs, bit-identical
// envelopes — without any new ε spend.
func New(opts Options) (*Server, error) {
	if opts.MaxBodyBytes == 0 {
		opts.MaxBodyBytes = 256 << 20
	}
	if opts.MaxBatch == 0 {
		opts.MaxBatch = 1 << 20
	}
	if opts.MaxSyntheticN == 0 {
		opts.MaxSyntheticN = 5_000_000
	}
	if opts.MaxConcurrentBuilds == 0 {
		opts.MaxConcurrentBuilds = runtime.GOMAXPROCS(0)
	}
	if opts.MaxConcurrentBatches == 0 {
		opts.MaxConcurrentBatches = runtime.GOMAXPROCS(0)
	}
	if opts.DrainTimeout == 0 {
		opts.DrainTimeout = 5 * time.Second
	}
	if opts.TraceRetain == 0 {
		opts.TraceRetain = 512
	}
	if opts.TraceSlow == 0 {
		opts.TraceSlow = 250 * time.Millisecond
	}
	if opts.TraceSample == 0 {
		opts.TraceSample = 100
	}
	buildQueue, batchQueue := opts.AdmissionQueue, opts.AdmissionQueue
	if buildQueue == 0 {
		buildQueue = 2 * opts.MaxConcurrentBuilds
	}
	if batchQueue == 0 {
		batchQueue = 2 * opts.MaxConcurrentBatches
	}
	s := &Server{
		registry:  NewRegistry(),
		metrics:   newMetrics(),
		mux:       http.NewServeMux(),
		opts:      opts,
		buildGate: newGate(opts.MaxConcurrentBuilds, buildQueue),
		batchGate: newGate(opts.MaxConcurrentBatches, batchQueue),
		logger:    opts.Logger,
		recorder:  obs.NewFlightRecorder(opts.TraceRetain, opts.TraceSlow, opts.TraceSample),
	}
	if s.logger == nil {
		s.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	// Point-in-time gauges over authoritative state: the gates' admitted
	// counts and the registry's aggregate footprint are computed at scrape
	// time, never shadowed by a copy.
	s.metrics.reg.GaugeFunc("privtree_builds_in_flight", "Release builds admitted and running.",
		func() float64 { return float64(s.buildGate.Inflight()) })
	s.metrics.reg.GaugeFunc("privtree_batches_in_flight", "Query batches admitted and running.",
		func() float64 { return float64(s.batchGate.Inflight()) })
	s.metrics.reg.GaugeFunc("privtree_datasets", "Registered datasets.",
		func() float64 { return float64(s.registry.Len()) })
	s.metrics.reg.GaugeFunc("privtree_store_bytes_total", "On-disk store footprint, all datasets.",
		func() float64 {
			var total int64
			for _, d := range s.registry.List() {
				total += d.StoreBytes()
			}
			return float64(total)
		})
	s.scratch.New = func() any { return new(queryScratch) }
	s.mux.HandleFunc("POST /v1/datasets", s.route("register", s.handleRegister))
	s.mux.HandleFunc("GET /v1/datasets", s.route("list_datasets", s.handleListDatasets))
	s.mux.HandleFunc("GET /v1/datasets/{name}", s.route("get_dataset", s.handleGetDataset))
	s.mux.HandleFunc("POST /v1/datasets/{name}/ingest", s.route("ingest", s.handleIngest))
	s.mux.HandleFunc("POST /v1/datasets/{name}/releases", s.route("create_release", s.handleCreateRelease))
	s.mux.HandleFunc("GET /v1/datasets/{name}/releases/{id}", s.route("get_release", s.handleGetRelease))
	s.mux.HandleFunc("POST /v1/datasets/{name}/releases/{id}/query", s.route("query", s.handleQuery))
	s.mux.HandleFunc("GET /v1/datasets/{name}/audit", s.route("audit", s.handleAudit))
	s.mux.HandleFunc("GET /v1/traces", s.route("list_traces", s.handleListTraces))
	s.mux.HandleFunc("GET /v1/traces/{id}", s.route("get_trace", s.handleGetTrace))
	s.mux.HandleFunc("GET /healthz", s.route("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", s.route("readyz", s.handleReady))
	s.mux.HandleFunc("GET /metrics", s.route("metrics", s.handleMetrics))
	s.mux.HandleFunc("GET /metricsz", s.route("metricsz", s.handleMetricsz))
	s.mux.HandleFunc("GET /v1/repl/datasets", s.route("repl_datasets", s.handleReplDatasets))
	s.mux.HandleFunc("GET /v1/repl/datasets/{name}/wal", s.route("repl_wal", s.handleReplWAL))
	s.mux.HandleFunc("GET /v1/repl/datasets/{name}/artifacts/{sha}", s.route("repl_artifact", s.handleReplArtifact))
	s.mux.HandleFunc("POST /v1/admin/promote", s.route("promote", s.handlePromote))
	s.mux.HandleFunc("POST /v1/admin/fence", s.route("fence", s.handleFence))
	if opts.ReplicaOf != "" && opts.DataDir == "" {
		return nil, fmt.Errorf("server: -replica-of requires a data dir: a replica's state must survive its own restart")
	}
	if err := s.loadDataDir(); err != nil {
		return nil, err
	}
	for _, d := range s.registry.List() {
		if d.store != nil {
			if _, fenced := d.store.FencedEpoch(); fenced {
				s.fenced.Store(true)
			}
		}
	}
	if opts.ReplicaOf != "" {
		s.isReplica.Store(true)
		s.startSyncer()
	}
	return s, nil
}

// Registry exposes the dataset registry (programmatic registration, tests).
func (s *Server) Registry() *Registry { return s.registry }

// Close drains and shuts the server down: both admission gates stop
// admitting immediately (new builds and batches get 503 shutting_down),
// in-flight work is waited for up to Options.DrainTimeout, and then every
// dataset's store is released. All acknowledged ledger traffic and
// artifacts are already durable — the drain protects in-flight requests
// from having the registry closed under them, not durability. Returns an
// error when the drain deadline passed with work still in flight (the
// registry is closed regardless; stragglers fail with store errors).
func (s *Server) Close() error {
	s.stopSyncer()
	deadline := time.Now().Add(s.opts.DrainTimeout)
	buildsDone := s.buildGate.drain(deadline)
	batchesDone := s.batchGate.drain(deadline)
	closeErr := s.registry.Close()
	if !buildsDone || !batchesDone {
		return fmt.Errorf("server: drain timeout after %v with %d builds and %d batches still in flight",
			s.opts.DrainTimeout, s.buildGate.Inflight(), s.batchGate.Inflight())
	}
	return closeErr
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.metrics.requestsTotal.Inc()
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// statusWriter captures the response status for latency histograms and
// slow-request logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// route wraps a handler with the request plumbing every route shares: a
// per-route request counter and latency histogram (resolved ONCE, at
// registration — the request path touches only atomics), a trace whose
// ID is echoed as X-Trace-Id and whose context flows down to the WAL,
// the flight-recorder capture, and the slow-request log. A well-formed
// inbound X-Trace-Id is adopted instead of minting a fresh ID, so one
// ID follows a request across client retries and cluster hops.
func (s *Server) route(name string, h http.HandlerFunc) http.HandlerFunc {
	c, lat := s.metrics.routeInstruments(name)
	return func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		var tr *obs.Trace
		if id := r.Header.Get("X-Trace-Id"); obs.ValidTraceID(id) {
			tr = obs.NewTraceWithID(id)
		} else {
			tr = obs.NewTrace()
		}
		w.Header().Set("X-Trace-Id", tr.ID())
		sw := statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(&sw, r.WithContext(obs.NewContext(r.Context(), tr)))
		dur := time.Since(start)
		// ObserveTraced pins the trace ID as the latency bucket's exemplar;
		// the recorder decides whether the full span breakdown is retained
		// for /v1/traces (tail sampling: errors and slow always, 1-in-N
		// otherwise).
		lat.ObserveTraced(dur.Seconds(), tr.ID())
		s.recorder.Record(tr, name, r.PathValue("name"), sw.status, start, dur)
		if slow := s.opts.SlowRequest; slow > 0 && dur >= slow {
			s.logger.Warn("slow request",
				"route", name,
				"method", r.Method,
				"path", r.URL.Path,
				"status", sw.status,
				"duration_ms", dur.Milliseconds(),
				"trace", tr.ID(),
				"spans", tr.Summary())
		}
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// decodeJSON parses a request body, translating the MaxBytesReader limit
// into a structured too_large error. Unknown fields are rejected: a
// misspelled release knob silently falling back to its default would
// irreversibly spend ε on the wrong artifact. Returns false when a
// response was already written.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &APIError{
				Code: CodeTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return false
		}
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// rectJSON is the wire form of an axis-aligned box.
type rectJSON struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// syntheticSpec asks the server to generate one of the paper's synthetic
// datasets instead of ingesting client data.
type syntheticSpec struct {
	Generator string `json:"generator"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
}

// registerRequest is the POST /v1/datasets body. Exactly one data source —
// csv, points, sequences, or synthetic — must be present; kind is inferred
// from the source when omitted.
type registerRequest struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind,omitempty"`
	Epsilon float64 `json:"epsilon"`

	Domain    *rectJSON      `json:"domain,omitempty"`
	CSV       string         `json:"csv,omitempty"`
	Points    [][]float64    `json:"points,omitempty"`
	Synthetic *syntheticSpec `json:"synthetic,omitempty"`

	Alphabet  int     `json:"alphabet,omitempty"`
	Sequences [][]int `json:"sequences,omitempty"`

	// Stream registers a streaming dataset: it starts EMPTY (no data
	// source), requires an explicit domain (spatial) or alphabet
	// (sequence), and is fed through POST .../ingest. See streamSpec.
	Stream *streamSpec `json:"stream,omitempty"`
}

// datasetInfo is the public (privacy-safe) view of a dataset: budgets,
// schema shape and release metadata only — never raw data, and never the
// exact cardinality. The true N is returned once, in the registration
// acknowledgment to the party that uploaded the data (who knows it
// already); emitting it from list/get/metrics would disclose exact
// membership information outside the ledger's accounting.
type datasetInfo struct {
	Name             string          `json:"name"`
	Kind             Kind            `json:"kind"`
	Dims             int             `json:"dims,omitempty"`
	EpsilonTotal     float64         `json:"epsilon_total"`
	EpsilonSpent     float64         `json:"epsilon_spent"`
	EpsilonRemaining float64         `json:"epsilon_remaining"`
	StoreBytes       int64           `json:"store_bytes,omitempty"`
	Releases         []*Release      `json:"releases,omitempty"`
	NumReleases      int             `json:"num_releases"`
	Stream           *streamInfoJSON `json:"stream,omitempty"`
}

// streamInfoJSON is the streaming status of a dataset: epoch positions
// and the window's composed ε. Pending counts the acknowledged-but-
// unsealed records; it is derived entirely from ingest API traffic (each
// batch's size was visible to its sender), not from hidden data, unlike
// the dataset cardinality which stays undisclosed.
type streamInfoJSON struct {
	EpochEpsilon  float64   `json:"epoch_epsilon"`
	Window        int       `json:"window"`
	LastEpoch     uint64    `json:"last_epoch"`
	WindowEpochs  int       `json:"window_epochs"`
	WindowEpsilon float64   `json:"window_epsilon"`
	Pending       int       `json:"pending"`
	LastSealedAt  time.Time `json:"last_sealed_at,omitempty"`
}

func info(d *Dataset, withReleases bool) datasetInfo {
	out := datasetInfo{
		Name:             d.Name,
		Kind:             d.Kind,
		Dims:             d.Dims(),
		EpsilonTotal:     d.Ledger.Total(),
		EpsilonSpent:     d.Ledger.Spent(),
		EpsilonRemaining: d.Ledger.Remaining(),
		StoreBytes:       d.StoreBytes(),
		NumReleases:      d.NumReleases(),
	}
	if withReleases {
		out.Releases = d.Releases()
		out.NumReleases = len(out.Releases)
	}
	if st := d.stream; st != nil {
		out.Stream = &streamInfoJSON{
			EpochEpsilon:  st.cfg.EpochEpsilon,
			Window:        st.cfg.Window,
			LastEpoch:     st.ring.LastIndex(),
			WindowEpochs:  st.ring.Len(),
			WindowEpsilon: st.ring.WindowEpsilon(),
			Pending:       st.pending(),
			LastSealedAt:  st.ring.LastSealedAt(),
		}
	}
	return out
}

// registerResponse acknowledges an ingest: it is the datasetInfo plus the
// exact ingested cardinality, disclosed only to the registrant.
type registerResponse struct {
	datasetInfo
	N int `json:"n"`
}

var spatialGenerators = map[string]bool{"road": true, "gowalla": true, "nyc": true, "beijing": true}
var sequenceGenerators = map[string]bool{"mooc": true, "msnbc": true}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	if s.isReplica.Load() {
		s.writeReadOnly(w)
		return
	}
	if s.fenced.Load() {
		// Registration never touches a store (the dataset gets a fresh
		// one), so the per-store fencing cannot reject it; the server-wide
		// flag must. A fenced node acquiring new datasets would become a
		// second live budget-writer.
		writeError(w, http.StatusForbidden, &APIError{Code: CodeFenced,
			Message: "node fenced by a higher writer epoch; register datasets on the current primary"})
		return
	}
	var req registerRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	sources := 0
	for _, present := range []bool{req.CSV != "", req.Points != nil, req.Synthetic != nil, req.Sequences != nil} {
		if present {
			sources++
		}
	}
	if req.Stream != nil {
		if sources != 0 {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "a streaming dataset starts empty: provide no data source, then POST .../ingest"})
			return
		}
	} else if sources != 1 {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "exactly one of csv, points, sequences, synthetic must be provided"})
		return
	}

	d, err := s.register(&req)
	if err != nil {
		if errors.Is(err, ErrExists) {
			writeError(w, http.StatusConflict, &APIError{Code: CodeConflict, Message: err.Error()})
			return
		}
		writeErrorFrom(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, registerResponse{datasetInfo: info(d, false), N: d.N()})
}

// register runs the registration transaction for req: build the dataset,
// persist its registration request and attach its store (when the server
// has a data dir), then insert it into the registry. Registrations are
// serialized by regMu so the name check is authoritative — with
// persistence, two racing registrations of one name must not both write
// dataset files.
func (s *Server) register(req *registerRequest) (*Dataset, error) {
	s.regMu.Lock()
	defer s.regMu.Unlock()
	if err := ValidateName(req.Name); err != nil {
		return nil, err
	}
	if _, taken := s.registry.Get(req.Name); taken {
		return nil, fmt.Errorf("server: dataset %q: %w", req.Name, ErrExists)
	}
	d, err := s.buildDataset(req)
	if err != nil {
		return nil, err
	}
	if s.opts.DataDir != "" {
		// Durability before visibility: the registration file and the
		// (empty) store must exist before any client can spend ε against
		// the dataset, so no debit can ever land in memory only.
		dsDir := s.datasetDir(d.Name)
		if err := writeDatasetFile(dsDir, req, d.CreatedAt); err != nil {
			return nil, fmt.Errorf("server: persisting dataset %q: %w", d.Name, err)
		}
		if err := d.AttachStore(filepath.Join(dsDir, "store")); err != nil {
			// The client is told the registration failed, so nothing of it
			// may survive to resurrect on the next restart. Removal is safe:
			// regMu serializes registrations, no other writer owns dsDir.
			os.RemoveAll(dsDir)
			return nil, fmt.Errorf("server: dataset %q: %w", d.Name, err)
		}
		if err := s.registry.Insert(d); err != nil {
			d.Close()
			os.RemoveAll(dsDir)
			return nil, err
		}
		s.datasetRegistered(d)
		return d, nil
	}
	if err := s.registry.Insert(d); err != nil {
		d.Close()
		return nil, err
	}
	s.datasetRegistered(d)
	return d, nil
}

// datasetRegistered wires a just-inserted dataset into the metrics
// plane: per-dataset gauges, and (with persistence) the WAL fsync
// latency observer.
func (s *Server) datasetRegistered(d *Dataset) {
	s.metrics.registerDataset(d)
	if d.store != nil {
		d.store.SetFsyncObserver(s.metrics.walFsync.Observe)
	}
	if s.syncer != nil {
		s.metrics.registerReplicaDataset(d, s.syncer)
	}
	if d.stream != nil {
		s.metrics.registerStreamDataset(d)
		if d.stream.cfg.Interval > 0 {
			go s.runSealTimer(d)
		}
	}
}

// buildDataset constructs (without registering) the dataset described by
// req. The cheap checks — name shape, budget — run first: rejecting a
// request after generating or validating millions of points would make
// malformed requests an amplification vector.
func (s *Server) buildDataset(req *registerRequest) (*Dataset, error) {
	if err := ValidateName(req.Name); err != nil {
		return nil, err
	}
	if !(req.Epsilon > 0) || math.IsInf(req.Epsilon, 0) {
		return nil, fmt.Errorf("server: total budget epsilon must be positive and finite, got %v", req.Epsilon)
	}
	kind := Kind(req.Kind)
	if kind == "" {
		switch {
		case req.Sequences != nil:
			kind = KindSequence
		case req.Synthetic != nil && sequenceGenerators[req.Synthetic.Generator]:
			kind = KindSequence
		case req.Stream != nil && req.Alphabet > 0:
			kind = KindSequence
		default:
			kind = KindSpatial
		}
	}
	if kind != KindSpatial && kind != KindSequence {
		return nil, fmt.Errorf("server: unknown dataset kind %q", req.Kind)
	}

	if req.Stream != nil {
		return s.buildStreamDataset(req, kind)
	}

	if req.Synthetic != nil {
		return s.registerSynthetic(req, kind)
	}

	switch kind {
	case KindSequence:
		if req.Sequences == nil {
			return nil, fmt.Errorf("server: sequence dataset needs a sequences array")
		}
		seqs := make([]privtree.Sequence, len(req.Sequences))
		for i, row := range req.Sequences {
			seqs[i] = privtree.Sequence(row)
		}
		return s.registry.NewSequenceDataset(req.Name, req.Alphabet, seqs, req.Epsilon)
	default:
		var domain geom.Rect
		if req.Domain != nil {
			// MakeRect screens the untrusted bounds (arity, finiteness,
			// inversion); Validate adds the domain-specific strictness
			// (positive extent per axis).
			r, err := geom.MakeRect(req.Domain.Lo, req.Domain.Hi)
			if err != nil {
				return nil, fmt.Errorf("server: invalid domain: %w", err)
			}
			if err := r.Validate(); err != nil {
				return nil, fmt.Errorf("server: invalid domain: %w", err)
			}
			domain = r
		}
		var pts []privtree.Point
		switch {
		case req.CSV != "":
			ds, err := dataset.ReadCSV(strings.NewReader(req.CSV), domain)
			if err != nil {
				return nil, err
			}
			domain, pts = ds.Domain, ds.Points
		default:
			pts = make([]privtree.Point, len(req.Points))
			for i, row := range req.Points {
				pts[i] = privtree.Point(row)
			}
			if domain.Dims() == 0 {
				if len(pts) == 0 {
					return nil, fmt.Errorf("server: empty point set needs an explicit domain")
				}
				domain = geom.UnitCube(len(pts[0]))
			}
		}
		return s.registry.NewSpatialDataset(req.Name, domain, pts, req.Epsilon)
	}
}

// buildStreamDataset constructs a streaming dataset: an EMPTY Data of the
// declared shape (explicit domain or alphabet — there are no records yet
// to infer them from) plus the streaming runtime state. The stream spec
// rides inside the persisted registration request, so a restarted node —
// and every replica, which rebuilds datasets from the registration
// document verbatim — derives the identical epoch policy and per-epoch
// release parameters.
func (s *Server) buildStreamDataset(req *registerRequest, kind Kind) (*Dataset, error) {
	var (
		d      *Dataset
		domain geom.Rect
		err    error
	)
	switch kind {
	case KindSequence:
		if req.Alphabet < 1 {
			return nil, fmt.Errorf("server: streaming sequence dataset needs a positive alphabet")
		}
		d, err = s.registry.NewSequenceDataset(req.Name, req.Alphabet, nil, req.Epsilon)
	default:
		if req.Domain == nil {
			return nil, fmt.Errorf("server: streaming spatial dataset needs an explicit domain")
		}
		domain, err = geom.MakeRect(req.Domain.Lo, req.Domain.Hi)
		if err != nil {
			return nil, fmt.Errorf("server: invalid domain: %w", err)
		}
		if err := domain.Validate(); err != nil {
			return nil, fmt.Errorf("server: invalid domain: %w", err)
		}
		d, err = s.registry.NewSpatialDataset(req.Name, domain, nil, req.Epsilon)
	}
	if err != nil {
		return nil, err
	}
	st, err := newDatasetStream(*req.Stream, kind, domain, req.Alphabet)
	if err != nil {
		return nil, err
	}
	d.stream = st
	return d, nil
}

// registerSynthetic generates one of the paper's synthetic datasets
// server-side; useful for demos and load tests without shipping data.
// Regeneration is a pure function of (generator, n, seed), which is what
// lets a persisted synthetic dataset replay identically on restart.
func (s *Server) registerSynthetic(req *registerRequest, kind Kind) (*Dataset, error) {
	spec := req.Synthetic
	if spec.N < 1 || spec.N > s.opts.MaxSyntheticN {
		return nil, fmt.Errorf("server: synthetic n must be in [1,%d], got %d", s.opts.MaxSyntheticN, spec.N)
	}
	rng := dp.NewRand(spec.Seed)
	switch {
	case kind == KindSpatial && spatialGenerators[spec.Generator]:
		ds := synth.SpatialByName(spec.Generator, spec.N, rng)
		return s.registry.NewSpatialDataset(req.Name, ds.Domain, ds.Points, req.Epsilon)
	case kind == KindSequence && sequenceGenerators[spec.Generator]:
		ds := synth.SequenceByName(spec.Generator, spec.N, rng)
		seqs := make([]privtree.Sequence, len(ds.Seqs))
		for i, sq := range ds.Seqs {
			out := make(privtree.Sequence, len(sq.Syms))
			for j, x := range sq.Syms {
				out[j] = int(x)
			}
			seqs[i] = out
		}
		return s.registry.NewSequenceDataset(req.Name, ds.Alphabet.Size, seqs, req.Epsilon)
	}
	return nil, fmt.Errorf("server: unknown %s generator %q (spatial: road, gowalla, nyc, beijing; sequence: mooc, msnbc)",
		kind, spec.Generator)
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	ds := s.registry.List()
	out := make([]datasetInfo, len(ds))
	for i, d := range ds {
		out[i] = info(d, false)
	}
	writeJSON(w, http.StatusOK, map[string]any{"datasets": out})
}

// lookup resolves the {name} path segment, writing a 404 on miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) (*Dataset, bool) {
	name := r.PathValue("name")
	d, ok := s.registry.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("dataset %q not registered", name)})
		return nil, false
	}
	return d, true
}

func (s *Server) handleGetDataset(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, info(d, true))
}

// releaseResponse is the POST .../releases reply: the release metadata plus
// the ledger position it left behind.
type releaseResponse struct {
	*Release
	Cached           bool    `json:"cached"`
	EpsilonSpent     float64 `json:"epsilon_spent"`
	EpsilonRemaining float64 `json:"epsilon_remaining"`
}

func (s *Server) handleCreateRelease(w http.ResponseWriter, r *http.Request) {
	if s.isReplica.Load() {
		// Replicas have no budget authority: a release is a ledger debit,
		// and the primary is the dataset's single budget-writer. (Cached
		// re-fetches still belong on the primary — routing them here would
		// make the cached/non-cached distinction depend on replica lag.)
		s.writeReadOnly(w)
		return
	}
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	if d.IsStream() {
		// Ad-hoc releases would debit ε outside the epoch accounting,
		// breaking the spent = epochs × ε_epoch invariant the streaming
		// plane maintains. Epoch seals are the only release path.
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: fmt.Sprintf("dataset %q is a streaming dataset: releases are created by epoch seals; query the releases/latest window alias", d.Name)})
		return
	}
	var params ReleaseParams
	if !decodeJSON(w, r, &params) {
		return
	}
	// Admission + deadline. The body is decoded first (cheap) so malformed
	// requests never occupy a build slot; the gate then bounds concurrent
	// builds and the deadline bounds this one. Both the deadline and a
	// client disconnect flow into ReleaseContext, which refunds a mid-build
	// debit durably before surfacing the error.
	ctx := r.Context()
	if s.opts.BuildTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.BuildTimeout)
		defer cancel()
	}
	if err := s.buildGate.acquire(ctx); err != nil {
		s.metrics.recordAdmissionReject(err)
		writeAdmissionError(w, err, "build")
		return
	}
	defer s.buildGate.release()
	rel, cached, err := d.ReleaseContext(ctx, params, s.opts.Workers)
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.recordDeadlineHit()
		}
		writeErrorFrom(w, err)
		return
	}
	if cached {
		s.metrics.releaseCacheHits.Inc()
	} else {
		s.metrics.releasesBuilt.Inc()
		// A genuine build produced trace spans (debit, wal_debit, build,
		// envelope, wal_commit); fold them into the per-stage latency
		// histograms so operators see where build wall-clock goes.
		for _, span := range obs.FromContext(ctx).Spans() {
			s.metrics.stageHist(span.Name).Observe(span.Dur.Seconds())
		}
	}
	status := http.StatusCreated
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, releaseResponse{
		Release:          rel,
		Cached:           cached,
		EpsilonSpent:     d.Ledger.Spent(),
		EpsilonRemaining: d.Ledger.Remaining(),
	})
}

// lookupRelease resolves {name}/{id}, writing a 404 on miss.
func (s *Server) lookupRelease(w http.ResponseWriter, r *http.Request) (*Dataset, *Release, bool) {
	d, ok := s.lookup(w, r)
	if !ok {
		return nil, nil, false
	}
	id := r.PathValue("id")
	rel, ok := d.GetRelease(id)
	if !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("dataset %q has no release %q", d.Name, id)})
		return nil, nil, false
	}
	return d, rel, true
}

func (s *Server) handleGetRelease(w http.ResponseWriter, r *http.Request) {
	if d, ok := s.registry.Get(r.PathValue("name")); ok && d.IsStream() && r.PathValue("id") == "latest" {
		s.writeLatestWindow(w, d)
		return
	}
	_, rel, ok := s.lookupRelease(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release_id": rel.ID,
		"kind":       rel.Kind,
		"params":     rel.Params,
		"artifact":   rel.Artifact(),
	})
}

// windowEpochJSON is one sealed epoch in the latest-window document.
// Record counts are deliberately absent: the read plane never discloses
// exact cardinalities (see datasetInfo).
type windowEpochJSON struct {
	Epoch     uint64    `json:"epoch"`
	ReleaseID string    `json:"release_id"`
	Epsilon   float64   `json:"epsilon"`
	SealedAt  time.Time `json:"sealed_at"`
}

// writeLatestWindow serves GET .../releases/latest for a streaming
// dataset: the served window's membership and its composed ε cost, so a
// reader can fetch each member artifact (or just query the alias).
func (s *Server) writeLatestWindow(w http.ResponseWriter, d *Dataset) {
	_, live := d.windowReleases()
	if len(live) == 0 {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("streaming dataset %q has no sealed epochs yet", d.Name)})
		return
	}
	epochs := make([]windowEpochJSON, len(live))
	var windowEps float64
	for i, e := range live {
		epochs[i] = windowEpochJSON{Epoch: e.Index, ReleaseID: e.ReleaseID, Epsilon: e.Epsilon, SealedAt: e.SealedAt}
		windowEps += e.Epsilon
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"release_id":     "latest",
		"kind":           d.Kind,
		"window":         epochs,
		"window_size":    d.stream.cfg.Window,
		"window_epsilon": windowEps,
		"last_epoch":     live[len(live)-1].Index,
	})
}

// handleQuery answers a batched-query body: rectangles (spatial, flat
// lo...hi rows) or symbol strings (sequence). The request is decoded and
// the reply encoded through the pooled columnar codec in batchcodec.go, so
// a batch costs O(1) heap allocations end to end.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	// Resolve the release — or, on a streaming dataset, the `latest` window
	// alias: the last W sealed epochs, whose per-query answers are SUMMED
	// across members (each member is an already-released artifact, so the
	// sum is post-processing: no new ε). The window snapshot is taken once
	// here; a seal landing mid-batch does not tear the answer.
	id := r.PathValue("id")
	var rel *Release
	var window []*Release
	if d.IsStream() && id == "latest" {
		window, _ = d.windowReleases()
		if len(window) == 0 {
			writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
				Message: fmt.Sprintf("streaming dataset %q has no sealed epochs yet", d.Name)})
			return
		}
		rel = window[len(window)-1]
	} else if rel, ok = d.GetRelease(id); !ok {
		writeError(w, http.StatusNotFound, &APIError{Code: CodeNotFound,
			Message: fmt.Sprintf("dataset %q has no release %q", d.Name, id)})
		return
	}
	// Admission + deadline for the batch plane. The gate is taken before
	// the body is even read: decoding and answering a million-query batch
	// are both CPU-heavy, so everything past this point counts against the
	// plane's concurrency cap.
	ctx := r.Context()
	if s.opts.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.QueryTimeout)
		defer cancel()
	}
	if err := s.batchGate.acquire(ctx); err != nil {
		s.metrics.recordAdmissionReject(err)
		writeAdmissionError(w, err, "batch")
		return
	}
	defer s.batchGate.release()
	sc := s.scratch.Get().(*queryScratch)
	defer func() {
		// Oversized scratches are dropped rather than pooled, so one giant
		// batch cannot pin its buffers behind ordinary traffic.
		if sc.retainedBytes() <= maxPooledScratchBytes {
			s.scratch.Put(sc)
		}
	}()

	body, err := readBody(r, sc.body)
	sc.body = body
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &APIError{
				Code: CodeTooLarge, Message: fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit)})
			return
		}
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "reading body: " + err.Error()})
		return
	}
	batch, err := parseQueryBody(string(body), sc, s.opts.MaxBatch)
	if err != nil {
		if errors.Is(err, errBatchTooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge, &APIError{Code: CodeTooLarge,
				Message: fmt.Sprintf("batch exceeds limit %d", s.opts.MaxBatch)})
			return
		}
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest, Message: "invalid JSON: " + err.Error()})
		return
	}
	nQueries, nStrings := 0, 0
	if batch.hasQueries {
		nQueries = len(sc.offs) - 1
	}
	if batch.hasStrings {
		nStrings = len(sc.soffs) - 1
	}
	n := nQueries + nStrings
	if n == 0 {
		writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
			Message: "empty batch: provide queries (spatial) or strings (sequence)"})
		return
	}
	if n > s.opts.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, &APIError{Code: CodeTooLarge,
			Message: fmt.Sprintf("batch of %d exceeds limit %d", n, s.opts.MaxBatch)})
		return
	}
	if cap(sc.counts) < n {
		sc.counts = make([]float64, n)
	}
	counts := sc.counts[:n]

	start := time.Now()
	switch rel.Kind {
	case KindSpatial:
		if batch.hasStrings {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "spatial release answers rectangle queries, not strings"})
			return
		}
		if err := buildRects(sc, rel.tree.Domain().Dims()); err != nil {
			writeErrorFrom(w, err)
			return
		}
		trees := []*privtree.SpatialTree{rel.tree}
		if window != nil {
			trees = make([]*privtree.SpatialTree, len(window))
			for i, wr := range window {
				trees[i] = wr.tree
			}
		}
		rects := sc.rects
		if err := answerBatchCtx(ctx, counts, s.opts.Workers, func(i int) float64 {
			var sum float64
			for _, t := range trees {
				sum += t.RangeCount(rects[i])
			}
			return sum
		}); err != nil {
			s.metrics.recordDeadlineHit()
			writeErrorFrom(w, err)
			return
		}
	case KindSequence:
		if batch.hasQueries {
			writeError(w, http.StatusBadRequest, &APIError{Code: CodeBadRequest,
				Message: "sequence release answers string queries, not rectangles"})
			return
		}
		if err := checkSyms(sc, d.alphabet()); err != nil {
			writeErrorFrom(w, err)
			return
		}
		models := []*privtree.SequenceModel{rel.model}
		if window != nil {
			models = make([]*privtree.SequenceModel, len(window))
			for i, wr := range window {
				models[i] = wr.model
			}
		}
		syms, soffs := sc.syms, sc.soffs
		if err := answerBatchCtx(ctx, counts, s.opts.Workers, func(i int) float64 {
			var sum float64
			for _, m := range models {
				sum += m.EstimateFrequency(privtree.Sequence(syms[soffs[i]:soffs[i+1]]))
			}
			return sum
		}); err != nil {
			s.metrics.recordDeadlineHit()
			writeErrorFrom(w, err)
			return
		}
	}
	elapsed := time.Since(start)
	s.metrics.recordQueries(n, elapsed)

	respID := rel.ID
	if window != nil {
		respID = "latest"
	}
	sc.out = appendQueryResponse(sc.out[:0], respID, counts, elapsed.Nanoseconds())
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(sc.out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"uptime_seconds": s.metrics.uptime().Seconds(),
		"datasets":       s.registry.Len(),
	})
}

// auditEntryJSON is one row of the audit endpoint: a ledger event or a
// release commit with its WAL sequence number and originating trace ID.
type auditEntryJSON struct {
	Seq     uint64    `json:"seq,omitempty"`
	Kind    string    `json:"kind"`
	Epsilon float64   `json:"epsilon,omitempty"`
	Key     string    `json:"key"`
	TraceID string    `json:"trace_id,omitempty"`
	SHA     string    `json:"sha256,omitempty"`
	At      time.Time `json:"at"`
}

// auditResponse is the GET /v1/datasets/{name}/audit document: the
// ledger position plus every event that produced it, so spent ε is
// explainable end to end — each entry names the WAL record that made it
// durable and the request trace that caused it.
type auditResponse struct {
	Dataset          string           `json:"dataset"`
	EpsilonTotal     float64          `json:"epsilon_total"`
	EpsilonSpent     float64          `json:"epsilon_spent"`
	EpsilonRemaining float64          `json:"epsilon_remaining"`
	WALSeq           uint64           `json:"wal_seq"`
	Entries          []auditEntryJSON `json:"entries"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	d, ok := s.lookup(w, r)
	if !ok {
		return
	}
	entries := d.Audit()
	out := auditResponse{
		Dataset:          d.Name,
		EpsilonTotal:     d.Ledger.Total(),
		EpsilonSpent:     d.Ledger.Spent(),
		EpsilonRemaining: d.Ledger.Remaining(),
		WALSeq:           d.WALSeq(),
		Entries:          make([]auditEntryJSON, len(entries)),
	}
	for i, e := range entries {
		out.Entries[i] = auditEntryJSON{
			Seq: e.Seq, Kind: e.Kind, Epsilon: e.Epsilon, Key: e.Key,
			TraceID: e.TraceID, SHA: e.SHA, At: e.At,
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// metricsResponse is the GET /metricsz document (the pre-Prometheus JSON
// shape, preserved wire-compatibly for existing scrapers).
type metricsResponse struct {
	UptimeSeconds    float64          `json:"uptime_seconds"`
	RequestsTotal    int64            `json:"requests_total"`
	RequestsByRoute  map[string]int64 `json:"requests_by_route"`
	QueriesAnswered  int64            `json:"queries_answered"`
	QueriesPerSecond float64          `json:"queries_per_second"`
	QueryNanosTotal  int64            `json:"query_nanos_total"`
	ReleasesBuilt    int64            `json:"releases_built"`
	ReleaseCacheHits int64            `json:"release_cache_hits"`
	// StoreBytesTotal sums every dataset's on-disk ledger+artifact
	// footprint (0 without -data-dir); the per-dataset gauges — including
	// remaining ε — ride each entry of Datasets.
	StoreBytesTotal int64         `json:"store_bytes_total"`
	Datasets        []datasetInfo `json:"datasets"`

	// Overload plane: point-in-time gauges of admitted work plus the
	// cumulative counters behind every "back off and retry" response.
	BuildsInFlight        int64 `json:"builds_in_flight"`
	BatchesInFlight       int64 `json:"batches_in_flight"`
	ShedTotal             int64 `json:"shed_total"`
	DeadlineExceededTotal int64 `json:"deadline_exceeded_total"`
	DrainingRejectsTotal  int64 `json:"draining_rejects_total"`
	RetryableErrorsTotal  int64 `json:"retryable_errors_total"`
}

// handleMetrics serves the Prometheus text exposition: every registered
// counter, gauge, and histogram, with per-route latency, per-dataset ε
// gauges, and Go runtime stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.reg.ServeHTTP(w, r)
}

// handleMetricsz serves the legacy JSON counters, wire-compatible with
// the shape /metrics had before the Prometheus exposition replaced it.
func (s *Server) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	ds := s.registry.List()
	infos := make([]datasetInfo, len(ds))
	var storeBytes int64
	for i, d := range ds {
		infos[i] = info(d, false)
		storeBytes += infos[i].StoreBytes
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		UptimeSeconds:    s.metrics.uptime().Seconds(),
		RequestsTotal:    int64(s.metrics.requestsTotal.Value()),
		RequestsByRoute:  s.metrics.snapshotRoutes(),
		QueriesAnswered:  int64(s.metrics.queriesAnswered.Value()),
		QueriesPerSecond: s.metrics.queriesPerSecond(),
		QueryNanosTotal:  int64(s.metrics.queryNanos.Value()),
		ReleasesBuilt:    int64(s.metrics.releasesBuilt.Value()),
		ReleaseCacheHits: int64(s.metrics.releaseCacheHits.Value()),
		StoreBytesTotal:  storeBytes,
		Datasets:         infos,

		BuildsInFlight:        s.buildGate.Inflight(),
		BatchesInFlight:       s.batchGate.Inflight(),
		ShedTotal:             int64(s.metrics.shedTotal.Value()),
		DeadlineExceededTotal: int64(s.metrics.deadlineTotal.Value()),
		DrainingRejectsTotal:  int64(s.metrics.drainRejects.Value()),
		RetryableErrorsTotal:  int64(s.metrics.retryableTotal.Value()),
	})
}
