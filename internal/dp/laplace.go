// Package dp implements the differential-privacy primitives PrivTree is
// built on: the Laplace distribution and mechanism, the exponential
// mechanism, and a sequential-composition budget accountant.
//
// All randomness flows through explicit *rand.Rand sources so that every
// experiment in the repository is reproducible from a seed.
package dp

import (
	"math"
	"math/rand/v2"
)

// Laplace describes a Laplace (double-exponential) distribution with the
// given mean and scale. Its density is f(x) = exp(-|x-mean|/scale)/(2·scale),
// exactly Equation (1) of the paper. The zero value is not usable; construct
// with NewLaplace.
type Laplace struct {
	Mean  float64
	Scale float64
}

// NewLaplace returns the Laplace distribution with the given mean and scale.
// It panics if scale is not strictly positive, since a non-positive scale has
// no privacy meaning and would silently disable noise.
func NewLaplace(mean, scale float64) Laplace {
	if !(scale > 0) {
		panic("dp: Laplace scale must be positive")
	}
	return Laplace{Mean: mean, Scale: scale}
}

// PDF returns the probability density at x.
func (l Laplace) PDF(x float64) float64 {
	return math.Exp(-math.Abs(x-l.Mean)/l.Scale) / (2 * l.Scale)
}

// LogPDF returns the natural log of the density at x.
func (l Laplace) LogPDF(x float64) float64 {
	return -math.Abs(x-l.Mean)/l.Scale - math.Log(2*l.Scale)
}

// CDF returns P[X <= x].
func (l Laplace) CDF(x float64) float64 {
	z := (x - l.Mean) / l.Scale
	if z < 0 {
		return 0.5 * math.Exp(z)
	}
	return 1 - 0.5*math.Exp(-z)
}

// Tail returns P[X > x], the complementary CDF, computed without
// cancellation for large x.
func (l Laplace) Tail(x float64) float64 {
	z := (x - l.Mean) / l.Scale
	if z > 0 {
		return 0.5 * math.Exp(-z)
	}
	return 1 - 0.5*math.Exp(z)
}

// Quantile returns the value x with CDF(x) = p. It panics unless 0 < p < 1.
func (l Laplace) Quantile(p float64) float64 {
	if !(p > 0 && p < 1) {
		panic("dp: Laplace quantile requires 0 < p < 1")
	}
	if p < 0.5 {
		return l.Mean + l.Scale*math.Log(2*p)
	}
	return l.Mean - l.Scale*math.Log(2*(1-p))
}

// Sample draws one variate using rng via inverse-CDF sampling.
func (l Laplace) Sample(rng *rand.Rand) float64 {
	// u is uniform on (-1/2, 1/2]; fold the sign out of the exponential.
	u := rng.Float64() - 0.5
	if u < 0 {
		return l.Mean + l.Scale*math.Log1p(2*u)
	}
	return l.Mean - l.Scale*math.Log1p(-2*u)
}

// LapNoise draws a single Laplace(0, scale) variate. It is the noise term
// written Lap(λ) throughout the paper.
func LapNoise(rng *rand.Rand, scale float64) float64 {
	return NewLaplace(0, scale).Sample(rng)
}

// NewRand returns a deterministic PCG-backed generator for the given seed.
// Every algorithm in this repository takes its randomness from one of these,
// so runs are reproducible bit-for-bit.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Split derives an independent child generator from rng. Algorithms that
// fan work out across sub-structures (e.g. one generator per tree) use Split
// so that adding noise draws in one branch does not perturb another.
func Split(rng *rand.Rand) *rand.Rand {
	return rand.New(rand.NewPCG(rng.Uint64(), rng.Uint64()))
}
