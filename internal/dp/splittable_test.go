package dp

import (
	"math"
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(42)
	b := NewStream(42)
	if a.Uint64(1) != b.Uint64(1) {
		t.Fatal("same seed, same tag produced different draws")
	}
	if a.Child(3).Uint64(0) != b.Child(3).Uint64(0) {
		t.Fatal("same child path produced different draws")
	}
	if NewStream(43).Uint64(1) == a.Uint64(1) {
		t.Fatal("different seeds produced identical draws")
	}
}

func TestStreamTagsIndependent(t *testing.T) {
	s := NewStream(7)
	if s.Uint64(1) == s.Uint64(2) {
		t.Fatal("distinct tags produced identical draws")
	}
}

func TestStreamChildrenDistinct(t *testing.T) {
	s := NewStream(99)
	seen := make(map[uint64]int)
	for i := 0; i < 1000; i++ {
		c := uint64(s.Child(i))
		if prev, dup := seen[c]; dup {
			t.Fatalf("children %d and %d share a stream state", prev, i)
		}
		seen[c] = i
	}
	// Child derivation must not collide with the parent either.
	if _, dup := seen[uint64(s)]; dup {
		t.Fatal("a child collided with its parent stream")
	}
}

func TestStreamPathDependence(t *testing.T) {
	// The same child index under different parents gives different streams:
	// node noise depends on the full path, not the index alone.
	root := NewStream(5)
	if root.Child(0).Child(1) == root.Child(1).Child(1) {
		t.Fatal("paths (0,1) and (1,1) collide")
	}
}

func TestStreamUniformRange(t *testing.T) {
	s := NewStream(11)
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		u := s.Child(i).Uniform(0)
		if !(u > 0 && u <= 1) {
			t.Fatalf("Uniform out of (0,1]: %v", u)
		}
		sum += u
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Uniform mean %v far from 0.5", mean)
	}
}

func TestStreamLaplaceMoments(t *testing.T) {
	// Mean 0, E|X| = scale for Laplace(0, scale).
	const scale = 2.5
	const n = 200000
	s := NewStream(13)
	sum, sumAbs := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := s.Child(i).Laplace(1, scale)
		sum += x
		sumAbs += math.Abs(x)
	}
	if mean := sum / n; math.Abs(mean) > 0.03*scale {
		t.Fatalf("Laplace mean %v not near 0", mean)
	}
	if meanAbs := sumAbs / n; math.Abs(meanAbs-scale)/scale > 0.02 {
		t.Fatalf("E|X| = %v, want %v", meanAbs, scale)
	}
}

func TestStreamLaplaceMatchesInverseCDF(t *testing.T) {
	// Stream.Laplace and Laplace.Sample share the inverse-CDF transform;
	// cross-check a quantile: the median of draws must sit near 0 and
	// roughly a quarter of draws must exceed scale·ln 2 (the 75% point).
	const scale = 1.0
	s := NewStream(17)
	const n = 100000
	neg, aboveQ3 := 0, 0
	q3 := NewLaplace(0, scale).Quantile(0.75)
	for i := 0; i < n; i++ {
		x := s.Child(i).Laplace(2, scale)
		if x < 0 {
			neg++
		}
		if x > q3 {
			aboveQ3++
		}
	}
	if f := float64(neg) / n; math.Abs(f-0.5) > 0.01 {
		t.Fatalf("negative fraction %v, want 0.5", f)
	}
	if f := float64(aboveQ3) / n; math.Abs(f-0.25) > 0.01 {
		t.Fatalf("fraction above Q3 = %v, want 0.25", f)
	}
}

func TestStreamLaplacePanicsOnBadScale(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive scale did not panic")
		}
	}()
	NewStream(1).Laplace(0, 0)
}
