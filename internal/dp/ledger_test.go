package dp

import (
	"errors"
	"math"
	"sync"
	"testing"
)

func TestLedgerSequentialComposition(t *testing.T) {
	l, err := NewLedger(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.4, "release-1"); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(0.6, "release-2"); err != nil {
		t.Fatal(err)
	}
	if got := l.Remaining(); got > 1e-12 {
		t.Fatalf("remaining = %v, want 0", got)
	}
	err = l.Spend(0.1, "release-3")
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("over-budget spend returned %v, want *BudgetError", err)
	}
	if be.Requested != 0.1 || be.Total != 1.0 {
		t.Fatalf("BudgetError fields = %+v", be)
	}
	if be.Remaining > 1e-12 {
		t.Fatalf("BudgetError.Remaining = %v, want ~0", be.Remaining)
	}
	// The rejected spend must not have mutated the ledger.
	if got := l.Spent(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("spent after rejection = %v, want 1.0", got)
	}
	if h := l.History(); len(h) != 2 {
		t.Fatalf("history has %d entries, want 2 (rejections are not debits)", len(h))
	}
}

func TestLedgerFractionalSplitTolerance(t *testing.T) {
	l, _ := NewLedger(1.0)
	// ε·(β−1)/β + ε/β can overshoot ε by a few ulps; the tolerance must
	// absorb it.
	beta := 7.0
	if err := l.Spend(1.0*(beta-1)/beta, "hists"); err != nil {
		t.Fatal(err)
	}
	if err := l.Spend(1.0/beta, "tree"); err != nil {
		t.Fatalf("float round-off rejected: %v", err)
	}
}

func TestLedgerRejectsBadInputs(t *testing.T) {
	if _, err := NewLedger(0); err == nil {
		t.Fatal("zero total accepted")
	}
	if _, err := NewLedger(-1); err == nil {
		t.Fatal("negative total accepted")
	}
	if _, err := NewLedger(math.Inf(1)); err == nil {
		t.Fatal("infinite total accepted")
	}
	l, _ := NewLedger(1)
	if err := l.Spend(0, "x"); err == nil {
		t.Fatal("zero spend accepted")
	}
	if err := l.Spend(-0.5, "x"); err == nil {
		t.Fatal("negative spend accepted")
	}
	if err := l.Spend(math.NaN(), "x"); err == nil {
		t.Fatal("NaN spend accepted")
	}
}

func TestLedgerRefund(t *testing.T) {
	l, _ := NewLedger(1.0)
	if err := l.Spend(0.8, "failed-release"); err != nil {
		t.Fatal(err)
	}
	l.Refund(0.8, "failed-release")
	if got := l.Remaining(); math.Abs(got-1.0) > 1e-12 {
		t.Fatalf("remaining after refund = %v, want 1.0", got)
	}
	if err := l.Spend(1.0, "real-release"); err != nil {
		t.Fatalf("full budget unavailable after refund: %v", err)
	}
	h := l.History()
	if len(h) != 3 || h[1].Epsilon != -0.8 {
		t.Fatalf("refund not recorded: %+v", h)
	}
}

// TestLedgerConcurrentSpends hammers one ledger from many goroutines and
// checks the accounting invariant: exactly total/step spends succeed and
// the spent sum never exceeds the total. Run under -race this also proves
// the ledger is data-race free.
func TestLedgerConcurrentSpends(t *testing.T) {
	const (
		step  = 0.01
		total = 1.0
		tries = 500
	)
	l, _ := NewLedger(total)
	var wg sync.WaitGroup
	var mu sync.Mutex
	succeeded := 0
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < tries/8; i++ {
				if err := l.Spend(step, "conc"); err == nil {
					mu.Lock()
					succeeded++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	want := int(total / step)
	if succeeded != want {
		t.Fatalf("%d spends succeeded, want %d", succeeded, want)
	}
	if l.Spent() > total*(1+1e-9) {
		t.Fatalf("spent %v exceeds total %v", l.Spent(), total)
	}
}
