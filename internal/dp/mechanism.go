package dp

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// LaplaceMechanism releases a numeric vector under ε-differential privacy by
// adding i.i.d. Laplace noise calibrated to the query's L1 sensitivity
// (Dwork et al., TCC'06). Scale = sensitivity/epsilon.
type LaplaceMechanism struct {
	Epsilon     float64
	Sensitivity float64
}

// Scale returns the Laplace noise scale sensitivity/ε used by the mechanism.
func (m LaplaceMechanism) Scale() float64 {
	if !(m.Epsilon > 0) {
		panic("dp: LaplaceMechanism requires epsilon > 0")
	}
	if !(m.Sensitivity > 0) {
		panic("dp: LaplaceMechanism requires sensitivity > 0")
	}
	return m.Sensitivity / m.Epsilon
}

// Release returns value + Lap(sensitivity/ε).
func (m LaplaceMechanism) Release(rng *rand.Rand, value float64) float64 {
	return value + LapNoise(rng, m.Scale())
}

// ReleaseVector returns a noisy copy of values with independent noise per
// coordinate. The caller is responsible for ensuring that Sensitivity bounds
// the L1 change of the whole vector under one tuple insertion.
func (m LaplaceMechanism) ReleaseVector(rng *rand.Rand, values []float64) []float64 {
	scale := m.Scale()
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = v + LapNoise(rng, scale)
	}
	return out
}

// ExponentialMechanism selects one of a finite set of candidates with
// probability proportional to exp(ε·score/(2·sensitivity)) (McSherry &
// Talwar, FOCS'07). It is used by the EM baseline for top-k string mining.
type ExponentialMechanism struct {
	Epsilon     float64
	Sensitivity float64
}

// Select returns the index of the chosen candidate given per-candidate
// scores. It panics on an empty score slice.
func (m ExponentialMechanism) Select(rng *rand.Rand, scores []float64) int {
	if len(scores) == 0 {
		panic("dp: ExponentialMechanism.Select on empty candidate set")
	}
	if !(m.Epsilon > 0) || !(m.Sensitivity > 0) {
		panic("dp: ExponentialMechanism requires positive epsilon and sensitivity")
	}
	// Stabilize by subtracting the max score before exponentiating.
	maxScore := scores[0]
	for _, s := range scores[1:] {
		if s > maxScore {
			maxScore = s
		}
	}
	weights := make([]float64, len(scores))
	total := 0.0
	k := m.Epsilon / (2 * m.Sensitivity)
	for i, s := range scores {
		w := math.Exp(k * (s - maxScore))
		weights[i] = w
		total += w
	}
	u := rng.Float64() * total
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return i
		}
	}
	return len(scores) - 1
}

// Budget is a sequential-composition privacy accountant (Lemma 2.1). An
// algorithm composed of parts consuming ε₁,…,ε_k satisfies (Σεᵢ)-DP; Budget
// enforces that the parts never spend more than the total.
type Budget struct {
	total float64
	spent float64
}

// NewBudget returns an accountant for a total budget of epsilon.
func NewBudget(epsilon float64) *Budget {
	if !(epsilon > 0) {
		panic("dp: budget must be positive")
	}
	return &Budget{total: epsilon}
}

// Total returns the configured total budget.
func (b *Budget) Total() float64 { return b.total }

// Spent returns the budget consumed so far.
func (b *Budget) Spent() float64 { return b.spent }

// Remaining returns the unspent budget.
func (b *Budget) Remaining() float64 { return b.total - b.spent }

// Spend consumes eps from the budget, returning an error if that would
// exceed the total. A tiny tolerance absorbs float round-off from fractional
// splits such as ε·(β−1)/β + ε/β.
func (b *Budget) Spend(eps float64) error {
	if !(eps > 0) {
		return fmt.Errorf("dp: cannot spend non-positive budget %v", eps)
	}
	const tol = 1e-9
	if b.spent+eps > b.total*(1+tol) {
		return fmt.Errorf("dp: budget exhausted: spent %v + requested %v > total %v",
			b.spent, eps, b.total)
	}
	b.spent += eps
	return nil
}

// MustSpend is Spend that panics on error; for internal call sites where the
// split is fixed by construction.
func (b *Budget) MustSpend(eps float64) {
	if err := b.Spend(eps); err != nil {
		panic(err)
	}
}
