package dp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLaplacePDFIntegratesToOne(t *testing.T) {
	l := NewLaplace(2, 1.5)
	// Trapezoid over a wide range.
	sum := 0.0
	const step = 0.001
	for x := -40.0; x < 44.0; x += step {
		sum += l.PDF(x) * step
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Fatalf("PDF mass = %v, want ~1", sum)
	}
}

func TestLaplaceCDFMatchesPDFIntegral(t *testing.T) {
	l := NewLaplace(0, 2)
	for _, x := range []float64{-5, -1, 0, 0.5, 3, 10} {
		sum := 0.0
		const step = 0.0005
		for u := -60.0; u < x; u += step {
			sum += l.PDF(u) * step
		}
		if math.Abs(sum-l.CDF(x)) > 1e-3 {
			t.Errorf("CDF(%v) = %v, integral = %v", x, l.CDF(x), sum)
		}
	}
}

func TestLaplaceCDFTailComplement(t *testing.T) {
	l := NewLaplace(1, 0.7)
	for _, x := range []float64{-10, -1, 0, 1, 2, 10, 50} {
		if got := l.CDF(x) + l.Tail(x); math.Abs(got-1) > 1e-12 {
			t.Errorf("CDF+Tail at %v = %v, want 1", x, got)
		}
	}
}

func TestLaplaceQuantileInvertsCDF(t *testing.T) {
	l := NewLaplace(-3, 4)
	for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		x := l.Quantile(p)
		if got := l.CDF(x); math.Abs(got-p) > 1e-12 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestLaplaceQuantileMedianIsMean(t *testing.T) {
	l := NewLaplace(7, 2)
	if got := l.Quantile(0.5); math.Abs(got-7) > 1e-12 {
		t.Fatalf("median = %v, want 7", got)
	}
}

func TestLaplaceSampleMoments(t *testing.T) {
	rng := NewRand(1)
	l := NewLaplace(3, 2)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-3) > 0.05 {
		t.Errorf("sample mean = %v, want ~3", mean)
	}
	// Var(Lap(λ)) = 2λ² = 8.
	if math.Abs(variance-8) > 0.3 {
		t.Errorf("sample variance = %v, want ~8", variance)
	}
}

func TestLaplaceSampleEmpiricalCDF(t *testing.T) {
	rng := NewRand(2)
	l := NewLaplace(0, 1)
	const n = 100000
	points := []float64{-2, -1, 0, 1, 2}
	counts := make([]int, len(points))
	for i := 0; i < n; i++ {
		x := l.Sample(rng)
		for j, p := range points {
			if x <= p {
				counts[j]++
			}
		}
	}
	for j, p := range points {
		emp := float64(counts[j]) / n
		if math.Abs(emp-l.CDF(p)) > 0.01 {
			t.Errorf("empirical CDF(%v) = %v, want %v", p, emp, l.CDF(p))
		}
	}
}

func TestLaplacePanicsOnBadScale(t *testing.T) {
	for _, scale := range []float64{0, -1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewLaplace(0, %v) did not panic", scale)
				}
			}()
			NewLaplace(0, scale)
		}()
	}
}

func TestQuantilePanicsOutOfRange(t *testing.T) {
	l := NewLaplace(0, 1)
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", p)
				}
			}()
			l.Quantile(p)
		}()
	}
}

func TestLaplaceTailSymmetryProperty(t *testing.T) {
	// Tail(mean+x) == CDF(mean−x) for all x, by symmetry.
	f := func(x float64, scaleSeed uint8) bool {
		scale := 0.1 + float64(scaleSeed%50)/10
		l := NewLaplace(0, scale)
		x = math.Mod(x, 100)
		a, b := l.Tail(x), l.CDF(-x)
		return math.Abs(a-b) <= 1e-12*(1+math.Abs(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaplaceCDFMonotoneProperty(t *testing.T) {
	l := NewLaplace(0, 1)
	f := func(a, b float64) bool {
		a, b = math.Mod(a, 1000), math.Mod(b, 1000)
		if a > b {
			a, b = b, a
		}
		return l.CDF(a) <= l.CDF(b)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRand(7)
	c1 := Split(parent)
	c2 := Split(parent)
	same := 0
	for i := 0; i < 64; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split children coincide on %d/64 draws", same)
	}
}

func TestLapNoiseZeroCentered(t *testing.T) {
	rng := NewRand(3)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += LapNoise(rng, 5)
	}
	if mean := sum / n; math.Abs(mean) > 0.1 {
		t.Fatalf("LapNoise mean = %v, want ~0", mean)
	}
}
