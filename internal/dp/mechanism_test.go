package dp

import (
	"math"
	"testing"
)

func TestLaplaceMechanismScale(t *testing.T) {
	m := LaplaceMechanism{Epsilon: 0.5, Sensitivity: 2}
	if got := m.Scale(); got != 4 {
		t.Fatalf("scale = %v, want 4", got)
	}
}

func TestLaplaceMechanismReleaseUnbiased(t *testing.T) {
	rng := NewRand(10)
	m := LaplaceMechanism{Epsilon: 1, Sensitivity: 1}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += m.Release(rng, 100)
	}
	if mean := sum / n; math.Abs(mean-100) > 0.05 {
		t.Fatalf("release mean = %v, want ~100", mean)
	}
}

func TestLaplaceMechanismReleaseVector(t *testing.T) {
	rng := NewRand(11)
	m := LaplaceMechanism{Epsilon: 10, Sensitivity: 1}
	in := []float64{1, 2, 3}
	out := m.ReleaseVector(rng, in)
	if len(out) != 3 {
		t.Fatalf("len = %d", len(out))
	}
	for i := range in {
		if in[i] == out[i] {
			t.Errorf("coordinate %d unperturbed (possible but vanishingly unlikely)", i)
		}
		if math.Abs(in[i]-out[i]) > 5 {
			t.Errorf("coordinate %d noise implausibly large at scale 0.1: %v", i, out[i]-in[i])
		}
	}
}

func TestLaplaceMechanismPanicsOnBadParams(t *testing.T) {
	cases := []LaplaceMechanism{
		{Epsilon: 0, Sensitivity: 1},
		{Epsilon: -1, Sensitivity: 1},
		{Epsilon: 1, Sensitivity: 0},
		{Epsilon: 1, Sensitivity: -2},
	}
	for _, m := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Scale() with %+v did not panic", m)
				}
			}()
			m.Scale()
		}()
	}
}

func TestExponentialMechanismPrefersHighScores(t *testing.T) {
	rng := NewRand(12)
	m := ExponentialMechanism{Epsilon: 2, Sensitivity: 1}
	scores := []float64{0, 0, 20, 0}
	hits := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m.Select(rng, scores) == 2 {
			hits++
		}
	}
	if frac := float64(hits) / n; frac < 0.99 {
		t.Fatalf("dominant candidate chosen %v of the time, want ≈1", frac)
	}
}

func TestExponentialMechanismNearUniformOnTies(t *testing.T) {
	rng := NewRand(13)
	m := ExponentialMechanism{Epsilon: 1, Sensitivity: 1}
	scores := []float64{5, 5, 5, 5}
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[m.Select(rng, scores)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-0.25) > 0.02 {
			t.Errorf("candidate %d frequency %v, want ~0.25", i, frac)
		}
	}
}

func TestExponentialMechanismRatioMatchesTheory(t *testing.T) {
	// Pr[i]/Pr[j] should be exp(ε(s_i−s_j)/(2·sens)).
	rng := NewRand(14)
	m := ExponentialMechanism{Epsilon: 1, Sensitivity: 1}
	scores := []float64{0, 2}
	counts := make([]int, 2)
	const n = 300000
	for i := 0; i < n; i++ {
		counts[m.Select(rng, scores)]++
	}
	got := float64(counts[1]) / float64(counts[0])
	want := math.Exp(1) // e^{1·2/2}
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("odds ratio = %v, want ~%v", got, want)
	}
}

func TestExponentialMechanismPanics(t *testing.T) {
	m := ExponentialMechanism{Epsilon: 1, Sensitivity: 1}
	rng := NewRand(15)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty candidate set did not panic")
			}
		}()
		m.Select(rng, nil)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero epsilon did not panic")
			}
		}()
		ExponentialMechanism{Epsilon: 0, Sensitivity: 1}.Select(rng, []float64{1})
	}()
}

func TestBudgetAccounting(t *testing.T) {
	b := NewBudget(1.0)
	if err := b.Spend(0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.6); err != nil {
		t.Fatal(err)
	}
	if got := b.Remaining(); math.Abs(got) > 1e-9 {
		t.Fatalf("remaining = %v, want 0", got)
	}
	if err := b.Spend(0.1); err == nil {
		t.Fatal("overspend did not error")
	}
}

func TestBudgetRejectsNonPositiveSpend(t *testing.T) {
	b := NewBudget(1)
	if err := b.Spend(0); err == nil {
		t.Error("Spend(0) did not error")
	}
	if err := b.Spend(-0.5); err == nil {
		t.Error("Spend(-0.5) did not error")
	}
}

func TestBudgetToleratesFloatRoundoff(t *testing.T) {
	// β-proportional splits like ε/β + ε(β−1)/β must not trip the guard.
	b := NewBudget(0.1)
	beta := 18.0
	if err := b.Spend(0.1 / beta); err != nil {
		t.Fatal(err)
	}
	if err := b.Spend(0.1 * (beta - 1) / beta); err != nil {
		t.Fatal(err)
	}
}

func TestBudgetPanicsOnBadTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBudget(0) did not panic")
		}
	}()
	NewBudget(0)
}

func TestMustSpendPanicsOnOverdraft(t *testing.T) {
	b := NewBudget(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("MustSpend overdraft did not panic")
		}
	}()
	b.MustSpend(1.0)
}
