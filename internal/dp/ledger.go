package dp

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// BudgetError is the structured rejection returned when a spend would
// exceed a ledger's total budget. Servers surface its fields verbatim so
// clients can see exactly how much budget remains.
type BudgetError struct {
	// Requested is the ε the caller tried to spend.
	Requested float64
	// Remaining is the budget still available at rejection time.
	Remaining float64
	// Total is the ledger's configured total budget.
	Total float64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("dp: privacy budget exhausted: requested ε=%g, remaining ε=%g of total ε=%g",
		e.Requested, e.Remaining, e.Total)
}

// Audit-trail entry kinds: every Debit is explicitly a spend or a
// refund, so a reader of History never has to infer the event from the
// sign of Epsilon (refunds additionally keep their negative sign, which
// preserves the "history sums to spent" arithmetic).
const (
	DebitKindSpend  = "debit"
	DebitKindRefund = "refund"
)

// Debit is one recorded spend (or refund) against a Ledger.
type Debit struct {
	// Kind is DebitKindSpend or DebitKindRefund.
	Kind string
	// Epsilon is the budget consumed (negative for refunds).
	Epsilon float64
	// Note identifies the release the spend paid for (e.g. a release id).
	Note string
	// At is the wall-clock spend time.
	At time.Time
	// TraceID links the debit to the request trace that caused it ("" when
	// the spend happened outside a traced request). It makes the audit
	// trail explainable end to end: every unit of spent ε names the
	// request that spent it.
	TraceID string
}

// Ledger is a concurrent-safe privacy-budget accountant enforcing
// sequential composition (Lemma 2.1 of the paper, after Dwork et al.): a
// pipeline whose parts consume ε₁,…,ε_k against one dataset satisfies
// (Σεᵢ)-differential privacy, so a dataset configured with total budget ε
// may never have its debits sum beyond ε. Every release (BuildSpatial,
// BuildSequenceModel, …) must debit the dataset's ledger before the
// mechanism runs; once the ledger is exhausted, further releases are
// rejected with a *BudgetError.
//
// Unlike Budget (a single-goroutine construction helper), Ledger is safe
// for concurrent use and keeps an audit trail of its debits.
type Ledger struct {
	mu     sync.Mutex
	total  float64
	spent  float64
	debits []Debit
}

// NewLedger returns a ledger with the given total budget. The total must be
// positive and finite.
func NewLedger(total float64) (*Ledger, error) {
	if !(total > 0) || math.IsInf(total, 0) {
		return nil, fmt.Errorf("dp: ledger total budget must be positive and finite, got %v", total)
	}
	return &Ledger{total: total}, nil
}

// Total returns the configured total budget.
func (l *Ledger) Total() float64 { return l.total }

// Spent returns the budget consumed so far.
func (l *Ledger) Spent() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spent
}

// Remaining returns the unspent budget (never negative).
func (l *Ledger) Remaining() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.remainingLocked()
}

func (l *Ledger) remainingLocked() float64 {
	r := l.total - l.spent
	if r < 0 {
		return 0
	}
	return r
}

// Spend atomically debits eps from the ledger, recording note in the audit
// trail. It returns a *BudgetError if the debit would push total spend past
// the configured budget (within a 1e-9 relative tolerance for float
// round-off in fractional splits), and a plain error for non-positive or
// non-finite eps.
func (l *Ledger) Spend(eps float64, note string) error {
	return l.SpendTraced(eps, note, "")
}

// SpendTraced is Spend with the request trace ID recorded in the audit
// trail alongside the note.
func (l *Ledger) SpendTraced(eps float64, note, traceID string) error {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return fmt.Errorf("dp: cannot spend non-positive budget %v", eps)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	const tol = 1e-9
	if l.spent+eps > l.total*(1+tol) {
		return &BudgetError{Requested: eps, Remaining: l.remainingLocked(), Total: l.total}
	}
	l.spent += eps
	l.debits = append(l.debits, Debit{Kind: DebitKindSpend, Epsilon: eps, Note: note, At: time.Now(), TraceID: traceID})
	return nil
}

// Refund returns eps to the ledger. It is only sound when the release the
// matching Spend paid for never happened (e.g. the mechanism failed before
// drawing any noise): refunding budget that bought a published artifact
// would break the sequential-composition guarantee. The refund is recorded
// in the audit trail as a negative debit.
func (l *Ledger) Refund(eps float64, note string) {
	l.RefundTraced(eps, note, "")
}

// RefundTraced is Refund with the request trace ID recorded in the audit
// trail alongside the note.
func (l *Ledger) RefundTraced(eps float64, note, traceID string) {
	if !(eps > 0) {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.spent -= eps
	if l.spent < 0 {
		l.spent = 0
	}
	l.debits = append(l.debits, Debit{Kind: DebitKindRefund, Epsilon: -eps, Note: note, At: time.Now(), TraceID: traceID})
}

// Restore replaces the ledger's state with a recovered audit trail,
// replaying each entry's arithmetic (including the clamp-at-zero refund
// rule) to rebuild spent ε. It exists for crash recovery: a session
// reopening its write-ahead log hands the replayed trail here, entries
// keeping their originally recorded timestamps. The recovered spend may
// legitimately exceed what a live ledger would have accepted (orphan
// debits whose releases were never acknowledged) — that direction only
// wastes budget, never leaks it — so Restore does not re-check the
// total.
func (l *Ledger) Restore(history []Debit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	spent := 0.0
	for _, d := range history {
		spent += d.Epsilon
		if spent < 0 {
			spent = 0
		}
	}
	l.spent = spent
	l.debits = append(l.debits[:0:0], history...)
}

// History returns a copy of the ledger's audit trail in spend order.
func (l *Ledger) History() []Debit {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Debit, len(l.debits))
	copy(out, l.debits)
	return out
}
