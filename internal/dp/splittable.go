package dp

import "math"

// Stream is a splittable, deterministic random stream keyed by a node's
// path through a tree. Unlike *rand.Rand, a Stream is a value (no heap
// allocation, no mutation): every draw is a pure function of the stream
// state and a caller-chosen tag, and child streams are derived from the
// parent state and the child's index. Two consequences matter for PrivTree:
//
//   - The noise observed at a node depends only on (root seed, path to the
//     node), never on the order nodes are visited — so a parallel tree
//     build fans subtrees out to worker goroutines and still produces a
//     tree identical to the serial build.
//   - Drawing needs no synchronization and no per-node generator object,
//     keeping the construction hot path allocation-free.
//
// The state mixing uses the SplitMix64 finalizer, whose avalanche behavior
// makes sibling and parent/child streams statistically independent. This is
// NOT a cryptographic generator; it matches the repository's existing PCG
// usage in quality.
type Stream uint64

// splitmix64 is the finalizer of Steele, Lea & Flood's SplitMix64.
func splitmix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const streamGolden = 0x9e3779b97f4a7c15 // 2^64 / φ, the SplitMix64 increment

// NewStream returns the root stream for a seed.
func NewStream(seed uint64) Stream {
	return Stream(splitmix64(seed ^ 0x5bf0f1ea35b1aa1d))
}

// Child derives the stream of the i-th child (i ≥ 0). The derivation chain
// from the root reproduces a node's stream from its path alone.
func (s Stream) Child(i int) Stream {
	return Stream(splitmix64(uint64(s) + streamGolden*uint64(i+1)))
}

// Uint64 returns the raw 64-bit draw for a tag. Distinct tags on the same
// stream give independent draws, so one node can consume several noise
// values (e.g. a split decision and a count release) without interference.
func (s Stream) Uint64(tag uint64) uint64 {
	return splitmix64(uint64(s) ^ splitmix64(tag*streamGolden+0x94d049bb133111eb))
}

// Uniform returns a uniform draw in the open interval (0, 1) for a tag:
// the 53-bit lattice is offset by half a step so neither endpoint is ever
// hit, and log-based transforms can never produce ±Inf.
func (s Stream) Uniform(tag uint64) float64 {
	return (float64(s.Uint64(tag)>>11) + 0.5) * 0x1p-53
}

// Laplace returns a Laplace(0, scale) draw for a tag via inverse-CDF
// sampling, the same transform as Laplace.Sample. It panics if scale is not
// strictly positive.
func (s Stream) Laplace(tag uint64, scale float64) float64 {
	if !(scale > 0) {
		panic("dp: Laplace scale must be positive")
	}
	// u is uniform on (-1/2, 1/2), open on both ends, so the result is
	// always finite; fold the sign out of the exponential.
	u := s.Uniform(tag) - 0.5
	if u < 0 {
		return scale * math.Log1p(2*u)
	}
	return -scale * math.Log1p(-2*u)
}
