// Package repl implements primary/replica replication for privtreed on
// top of internal/store: WAL log shipping, content-addressed artifact
// transfer, and fenced failover.
//
// # Topology
//
//	                 writes (debits, builds, commits)
//	clients ────────────────► primary ──┐
//	   │                                │  log shipping (pull):
//	   │  reads (queries, audit,        │   GET /v1/repl/datasets
//	   │  artifact fetch, /metrics)     │   GET /v1/repl/datasets/{name}/wal?from=N
//	   └───────► replicas ◄─────────────┘   GET /v1/repl/datasets/{name}/artifacts/{sha}
//
// The primary is the dataset's single budget-writer: only it appends
// debits, refunds, and commits to the ε ledger WAL. Replicas pull the
// same CRC-framed records that live in the primary's WAL — re-framed
// deterministically from its in-memory history, so compaction never
// breaks shipping — and apply them verbatim at the same sequence
// numbers, making each replica's history a bit-identical prefix of the
// primary's. Released envelopes travel by SHA-256 content address and
// are hash-verified on receipt, so a replica can never serve bytes the
// primary did not commit. Queries over released trees are pure
// post-processing; replicas therefore need no budget authority at all.
//
// # Single budget-writer and fencing
//
// The safety property is that spent ε is never under-counted, and its
// cluster corollary: two nodes must never both believe they may debit
// the same dataset's budget. The mechanism is a monotonic writer epoch,
// carried as a durable WAL record (store.EventEpoch) and in the shipping
// protocol's X-Privtree-Writer-Epoch / X-Privtree-Min-Epoch headers:
//
//   - Promotion appends an epoch record granting epoch e+1; the record
//     is fsynced before the promotion is acknowledged and replicates
//     like any other record.
//   - A store that has seen (or been told of) a writer at a higher epoch
//     is FENCED, durably: every local append — debit, refund, commit,
//     promotion, replicated batch — fails, across restarts.
//   - A puller presents its own epoch as X-Privtree-Min-Epoch; a node
//     asked to serve a stream below that epoch knows a newer writer
//     exists, fences itself durably, and refuses with a structured
//     "fenced" error. A revived stale primary therefore cannot ship its
//     unfenced history to anyone who has seen the new writer.
//   - A replica rejects any shipment whose advertised epoch is below its
//     own, so its history can never regress to a stale writer's.
//
// A partitioned stale primary can keep accepting writes until it is
// fenced — the protocol is fail-safe for ε (each side's ledger still
// over-counts its own acknowledged debits; budgets are per-store, and
// promotion is an explicit operator action), not a consensus system.
// Repointing clients and replicas at the promoted node (and delivering
// the fence to the old primary, which promotion attempts best-effort) is
// the operator's runbook step; once any shipping request from the new
// regime touches the stale node, fencing is automatic and permanent.
//
// # Degraded mode
//
// Replicas serve the full read plane from local state and keep doing so
// when the primary is unreachable — the Syncer just stops advancing and
// the replica's lag gauges grow. Catch-up state is observable via
// Syncer.CaughtUp (readiness) and per-dataset applied/observed sequence
// numbers (the privtree_replica_last_applied_seq and
// privtree_replica_lag_records gauges).
package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"privtree/internal/obs"
	"privtree/internal/store"
)

// Shipping protocol headers.
const (
	// HeaderWriterEpoch reports the serving node's writer epoch on every
	// shipping response.
	HeaderWriterEpoch = "X-Privtree-Writer-Epoch"
	// HeaderMinEpoch is presented by a puller: the lowest writer epoch it
	// will accept a stream from. A node whose epoch is lower must fence
	// itself and refuse.
	HeaderMinEpoch = "X-Privtree-Min-Epoch"
	// HeaderLastSeq reports the last WAL sequence number included in a
	// frame response (and the node's last sequence on dataset listings).
	HeaderLastSeq = "X-Privtree-Last-Seq"
)

// DatasetDoc describes one replicated dataset as advertised by the
// primary. Registration carries the primary's persisted dataset.json
// verbatim, so a replica rebuilds the dataset from exactly the bytes the
// primary registered it with.
type DatasetDoc struct {
	Name        string    `json:"name"`
	CreatedAt   time.Time `json:"created_at"`
	WriterEpoch uint64    `json:"writer_epoch"`
	LastSeq     uint64    `json:"last_seq"`
	// LastEpoch is the newest stream epoch sealed on the advertising node
	// (0 for non-streaming datasets); replicas compare it against their
	// local seal position to report epochs-behind.
	LastEpoch    uint64          `json:"last_epoch,omitempty"`
	Registration json.RawMessage `json:"registration"`
}

// RemoteError is a structured (JSON error envelope) rejection from the
// peer, preserving its error code for fencing detection.
type RemoteError struct {
	StatusCode int
	Code       string
	Message    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("repl: peer returned %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// IsFenced reports whether err is a structured rejection carrying the
// "fenced" error code — the peer refuses because a higher-epoch writer
// exists.
func IsFenced(err error) bool {
	var re *RemoteError
	return errors.As(err, &re) && re.Code == "fenced"
}

// Client is the shipping-protocol client: dataset discovery, WAL frame
// pull, hash-verified artifact fetch, and fence delivery.
type Client struct {
	base  string
	httpc *http.Client
}

// NewClient returns a protocol client for the peer at base (e.g.
// "http://10.0.0.1:8080"). httpc may be nil for http.DefaultClient.
func NewClient(base string, httpc *http.Client) *Client {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	return &Client{base: strings.TrimRight(base, "/"), httpc: httpc}
}

func (c *Client) get(ctx context.Context, path string, header http.Header) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	// Propagate the pull's trace so the primary's flight recorder and the
	// replica's see the same ID for one shipping operation.
	if id := obs.FromContext(ctx).ID(); id != "" {
		req.Header.Set("X-Trace-Id", id)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		return nil, decodeRemoteError(resp)
	}
	return resp, nil
}

func decodeRemoteError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err == nil && envelope.Error.Code != "" {
		return &RemoteError{StatusCode: resp.StatusCode, Code: envelope.Error.Code, Message: envelope.Error.Message}
	}
	return &RemoteError{StatusCode: resp.StatusCode, Code: "unknown", Message: strings.TrimSpace(string(body))}
}

// Datasets lists the peer's replicated datasets.
func (c *Client) Datasets(ctx context.Context) ([]DatasetDoc, error) {
	resp, err := c.get(ctx, "/v1/repl/datasets", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out struct {
		Datasets []DatasetDoc `json:"datasets"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&out); err != nil {
		return nil, fmt.Errorf("repl: decoding dataset listing: %w", err)
	}
	return out.Datasets, nil
}

// WALFrames pulls CRC-framed WAL records for dataset with sequence
// numbers after from, presenting minEpoch as the lowest acceptable
// writer epoch. It returns the raw frames, the peer's writer epoch, and
// the last sequence number included.
func (c *Client) WALFrames(ctx context.Context, dataset string, from uint64, minEpoch uint64, maxBytes int) (frames []byte, writerEpoch, lastSeq uint64, err error) {
	q := url.Values{"from": {strconv.FormatUint(from, 10)}}
	if maxBytes > 0 {
		q.Set("max_bytes", strconv.Itoa(maxBytes))
	}
	h := http.Header{}
	if minEpoch > 0 {
		h.Set(HeaderMinEpoch, strconv.FormatUint(minEpoch, 10))
	}
	resp, err := c.get(ctx, "/v1/repl/datasets/"+url.PathEscape(dataset)+"/wal?"+q.Encode(), h)
	if err != nil {
		return nil, 0, 0, err
	}
	defer resp.Body.Close()
	writerEpoch, _ = strconv.ParseUint(resp.Header.Get(HeaderWriterEpoch), 10, 64)
	lastSeq, err = strconv.ParseUint(resp.Header.Get(HeaderLastSeq), 10, 64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("repl: frame response missing %s header", HeaderLastSeq)
	}
	frames, err = io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("repl: reading frames: %w", err)
	}
	return frames, writerEpoch, lastSeq, nil
}

// Artifact fetches one committed envelope by content address and
// verifies the bytes hash to it before returning them.
func (c *Client) Artifact(ctx context.Context, dataset, shaHex string) ([]byte, error) {
	resp, err := c.get(ctx, "/v1/repl/datasets/"+url.PathEscape(dataset)+"/artifacts/"+url.PathEscape(shaHex), nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return nil, fmt.Errorf("repl: reading artifact %s: %w", shaHex, err)
	}
	// The store re-verifies on PutArtifact, but verifying here too keeps a
	// corrupted transfer from being reported as a store error.
	if !store.VerifyAddr(shaHex, blob) {
		return nil, fmt.Errorf("repl: artifact %s: received bytes do not hash to their address", shaHex)
	}
	return blob, nil
}

// Fence tells the peer a writer at epoch exists, asking it to durably
// fence every dataset below that epoch. Used best-effort at promotion
// time; fencing is also triggered lazily by any shipping request the
// stale node receives.
func (c *Client) Fence(ctx context.Context, epoch uint64) error {
	body := strings.NewReader(fmt.Sprintf(`{"epoch":%d}`, epoch))
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/admin/fence", body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeRemoteError(resp)
	}
	return nil
}

// Replica is one locally served dataset on the applying side of log
// shipping (implemented by the server's dataset registry).
type Replica interface {
	// LastSeq returns the highest applied WAL sequence number.
	LastSeq() uint64
	// WriterEpoch returns the highest writer epoch in the applied history.
	WriterEpoch() uint64
	// HasArtifact reports whether the artifact is already stored locally.
	HasArtifact(shaHex string) bool
	// PutArtifact stores a fetched artifact, verifying its address.
	PutArtifact(shaHex string, blob []byte) error
	// ApplyFrames validates and applies shipped WAL frames verbatim.
	ApplyFrames(frames []byte) error
}

// Target is the applying side's dataset factory: Ensure returns the
// local replica for doc, creating and registering the dataset (from
// doc.Registration) the first time it appears in the primary's listing.
type Target interface {
	Ensure(doc DatasetDoc) (Replica, error)
}

// Options configures a Syncer.
type Options struct {
	// Interval between sync passes (default 250ms).
	Interval time.Duration
	// HTTPClient used for shipping requests (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxBytes per WAL pull (default 1 MiB).
	MaxBytes int
	// Logger for sync errors (default slog.Default).
	Logger *slog.Logger
	// TraceHook, when non-nil, receives one completed trace per shipping
	// operation (op "repl.wal_pull" or "repl.artifact_fetch") — the
	// replica server feeds these into its flight recorder and stage
	// histograms. An artifact fetch's trace carries the ORIGINATING
	// release's trace ID (from the shipped WAL commit record), so the ID
	// a client saw on its release resolves on the replica too.
	TraceHook func(dataset, op string, tr *obs.Trace, start time.Time, dur time.Duration, err error)
}

// DatasetLag is one dataset's shipping progress: the last sequence
// number applied locally and the last one observed on the primary, plus
// (for streaming datasets) the primary's newest sealed epoch.
type DatasetLag struct {
	Applied  uint64
	Observed uint64
	// PrimaryEpoch is the newest stream epoch the primary advertised (0
	// for non-streaming datasets); compare against the local store's
	// LastSealedEpoch for epochs-behind.
	PrimaryEpoch uint64
}

// Lag returns the record lag (observed - applied, never negative).
func (l DatasetLag) Lag() uint64 {
	if l.Observed <= l.Applied {
		return 0
	}
	return l.Observed - l.Applied
}

// Syncer drives continuous log shipping from one primary into a Target.
// Run it in a goroutine; it stops when its context is cancelled. All
// methods are safe for concurrent use.
type Syncer struct {
	client    *Client
	target    Target
	interval  time.Duration
	maxBytes  int
	log       *slog.Logger
	traceHook func(dataset, op string, tr *obs.Trace, start time.Time, dur time.Duration, err error)

	mu     sync.Mutex
	lag    map[string]DatasetLag
	caught bool      // latches true after the first fully caught-up pass
	seen   time.Time // last successful contact with the primary
}

// NewSyncer returns a Syncer pulling from the primary at base into
// target.
func NewSyncer(base string, target Target, opts Options) *Syncer {
	if opts.Interval <= 0 {
		opts.Interval = 250 * time.Millisecond
	}
	if opts.MaxBytes <= 0 {
		opts.MaxBytes = 1 << 20
	}
	if opts.Logger == nil {
		opts.Logger = slog.Default()
	}
	return &Syncer{
		client:    NewClient(base, opts.HTTPClient),
		target:    target,
		interval:  opts.Interval,
		maxBytes:  opts.MaxBytes,
		log:       opts.Logger,
		traceHook: opts.TraceHook,
		lag:       make(map[string]DatasetLag),
	}
}

// observeOp finishes one traced shipping operation: closes its span and
// hands the trace to the TraceHook, if any.
func (s *Syncer) observeOp(dataset, op string, tr *obs.Trace, start time.Time, err error) {
	dur := time.Since(start)
	tr.Add(op, start, dur)
	if s.traceHook != nil {
		s.traceHook(dataset, op, tr, start, dur, err)
	}
}

// Primary returns the address the syncer pulls from.
func (s *Syncer) Primary() string { return s.client.base }

// CaughtUp reports whether the replica has completed at least one fully
// caught-up sync pass. It latches: a later primary outage does not make
// a replica "not ready" again — serving stale-but-complete reads is the
// whole point of degraded mode.
func (s *Syncer) CaughtUp() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.caught
}

// Status returns the per-dataset shipping progress.
func (s *Syncer) Status() map[string]DatasetLag {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]DatasetLag, len(s.lag))
	for k, v := range s.lag {
		out[k] = v
	}
	return out
}

// LastContact returns the time of the last successful exchange with the
// primary (zero before the first).
func (s *Syncer) LastContact() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seen
}

// Run pulls until ctx is cancelled. Transient failures — an unreachable
// primary, a partition mid-stream, a corrupt shipment — are logged and
// retried on the next pass; the replica keeps serving whatever it has.
func (s *Syncer) Run(ctx context.Context) {
	t := time.NewTicker(s.interval)
	defer t.Stop()
	for {
		if err := s.syncOnce(ctx); err != nil && ctx.Err() == nil {
			s.log.Warn("replication sync failed", "primary", s.client.base, "err", err)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// syncOnce performs one full pass: list datasets, then for each, pull
// and apply frames until caught up with the listing.
func (s *Syncer) syncOnce(ctx context.Context) error {
	docs, err := s.client.Datasets(ctx)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.seen = time.Now()
	s.mu.Unlock()
	allCaught := true
	var firstErr error
	for _, doc := range docs {
		caught, err := s.syncDataset(ctx, doc)
		if err != nil {
			allCaught = false
			if firstErr == nil {
				firstErr = fmt.Errorf("dataset %q: %w", doc.Name, err)
			}
			continue
		}
		if !caught {
			allCaught = false
		}
	}
	if allCaught && firstErr == nil {
		s.mu.Lock()
		s.caught = true
		s.mu.Unlock()
	}
	return firstErr
}

func (s *Syncer) syncDataset(ctx context.Context, doc DatasetDoc) (caught bool, err error) {
	rep, err := s.target.Ensure(doc)
	if err != nil {
		return false, err
	}
	local := rep.WriterEpoch()
	if doc.WriterEpoch < local {
		// The listed node is a stale writer; never regress to its stream.
		return false, fmt.Errorf("primary advertises epoch %d below local epoch %d; refusing its stream", doc.WriterEpoch, local)
	}
	cur := rep.LastSeq()
	defer func() {
		s.mu.Lock()
		s.lag[doc.Name] = DatasetLag{Applied: rep.LastSeq(), Observed: max(doc.LastSeq, rep.LastSeq()), PrimaryEpoch: doc.LastEpoch}
		s.mu.Unlock()
	}()
	for cur < doc.LastSeq {
		if ctx.Err() != nil {
			return false, ctx.Err()
		}
		// Each pull gets its own trace: the ID rides the request to the
		// primary (whose recorder may retain the serving side) and lands
		// in the replica's recorder via the TraceHook.
		pullTr := obs.NewTrace()
		pullStart := time.Now()
		frames, epoch, last, err := s.client.WALFrames(obs.NewContext(ctx, pullTr), doc.Name, cur, local, s.maxBytes)
		s.observeOp(doc.Name, "repl.wal_pull", pullTr, pullStart, err)
		if err != nil {
			return false, err
		}
		if epoch < local {
			return false, fmt.Errorf("stream advertises epoch %d below local epoch %d; refusing", epoch, local)
		}
		if len(frames) == 0 || last <= cur {
			break // primary compacted or listing raced; re-poll next pass
		}
		if err := s.fetchArtifacts(ctx, doc.Name, rep, frames); err != nil {
			return false, err
		}
		if err := rep.ApplyFrames(frames); err != nil {
			return false, err
		}
		local = rep.WriterEpoch() // an applied epoch record raises the bar
		cur = rep.LastSeq()
	}
	return cur >= doc.LastSeq, nil
}

// fetchArtifacts pre-fetches (hash-verified) every artifact referenced
// by commit records in frames, so the batch can be applied atomically.
func (s *Syncer) fetchArtifacts(ctx context.Context, dataset string, rep Replica, frames []byte) error {
	events, err := store.ParseFrames(frames)
	if err != nil {
		return fmt.Errorf("corrupt shipment: %w", err)
	}
	for _, e := range events {
		if e.Kind != store.EventCommit {
			continue
		}
		shaHex := store.AddrString(e.SHA)
		if rep.HasArtifact(shaHex) {
			continue
		}
		// The fetch adopts the ORIGINATING release's trace ID from the
		// shipped commit record: an operator holding the X-Trace-Id a
		// client saw can look up the artifact's arrival on the replica.
		var tr *obs.Trace
		if obs.ValidTraceID(e.Trace) {
			tr = obs.NewTraceWithID(e.Trace)
		} else {
			tr = obs.NewTrace()
		}
		start := time.Now()
		blob, err := s.client.Artifact(obs.NewContext(ctx, tr), dataset, shaHex)
		if err == nil {
			err = rep.PutArtifact(shaHex, blob)
		}
		s.observeOp(dataset, "repl.artifact_fetch", tr, start, err)
		if err != nil {
			return err
		}
	}
	return nil
}
