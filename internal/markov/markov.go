// Package markov implements the paper's Section 4: the PrivTree extension
// that builds differentially private prediction suffix trees (PSTs) on
// sequence data. The split decision uses the monotone score of Equation
// (13), c(v) = ‖hist(v)‖₁ − max_x hist(v)[x], whose sensitivity under one
// sequence insertion is l⊤ (Theorem 4.1); histograms are released in a
// post-processing step (Theorem 4.2) with the β-proportional budget split
// of Section 4.2.
package markov

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"privtree/internal/core"
	"privtree/internal/dp"
	"privtree/internal/pst"
	"privtree/internal/sequence"
)

// Config parameterizes the private PST build.
type Config struct {
	// Epsilon is the TOTAL privacy budget; it is split as ε/β for tree
	// construction and ε·(β−1)/β for histogram release, the paper's
	// recommendation (the score sums β−1 histogram counts, so it is about
	// β−1 times more noise-resilient than a single count).
	Epsilon float64
	// LTop is l⊤, the bound on sequence length (counting & but not $).
	// Sequences longer than l⊤ must have been truncated beforehand (use
	// sequence.Dataset.Truncate); Build rejects datasets violating the
	// bound, since the privacy guarantee would silently be void.
	LTop int
	// Theta is the split threshold; the paper uses 0.
	Theta float64
	// MaxDepth guards recursion (a PST cannot usefully be deeper than
	// l⊤ anyway); 0 means l⊤+1.
	MaxDepth int
}

// Model is a released private PST: the tree structure plus noisy
// prediction histograms. It embeds pst.Tree, so frequency estimation and
// synthetic generation come from the exact-model code paths operating on
// the noisy histograms.
type Model struct {
	pst.Tree
	// TreeEpsilon and HistEpsilon record the realized budget split.
	TreeEpsilon float64
	HistEpsilon float64
}

// Score is Equation (13): histogram magnitude minus its largest count. It
// is monotone (Lemma 4.1) and small when the histogram is small (C2) or
// dominated by one symbol, i.e. low entropy (C3).
func Score(hist []float64) float64 {
	sum, maxC := 0.0, 0.0
	for _, c := range hist {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	return sum - maxC
}

// Build constructs the private PST. The procedure is Algorithm 2 with the
// three changes of Section 4.2: the tree is a PST of fanout β=|I|+1, the
// score is Equation (13), and the released structure carries noisy
// histograms produced by the post-processing step.
func Build(data *sequence.Dataset, cfg Config, rng *rand.Rand) (*Model, error) {
	if cfg.LTop < 1 {
		return nil, fmt.Errorf("markov: LTop must be >= 1, got %d", cfg.LTop)
	}
	for i, s := range data.Seqs {
		if s.EffectiveLen() > cfg.LTop {
			return nil, fmt.Errorf("markov: sequence %d has effective length %d > LTop %d; truncate first", i, s.EffectiveLen(), cfg.LTop)
		}
	}
	beta := data.Alphabet.Size + 1
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = cfg.LTop + 1
	}
	budget := dp.NewBudget(cfg.Epsilon)
	epsTree := cfg.Epsilon / float64(beta)
	epsHist := cfg.Epsilon - epsTree
	budget.MustSpend(epsTree)
	budget.MustSpend(epsHist)

	// Tree construction: Theorem 4.1's noise scale comes out of the core
	// parameterization with Sensitivity = l⊤.
	params := core.Params{
		Epsilon:     epsTree,
		Fanout:      beta,
		Theta:       cfg.Theta,
		Sensitivity: float64(cfg.LTop),
		MaxDepth:    cfg.MaxDepth,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	dec := core.NewDecider(params, rng)

	builder := pst.NewBuilder(data)
	root := builder.NewRoot()
	var grow func(n *pst.Node)
	grow = func(n *pst.Node) {
		// C1: a $-anchored context cannot be extended; this depends only
		// on dom(v), so applying it costs no privacy.
		if n.Ctx.Anchored {
			return
		}
		if !dec.ShouldSplit(Score(n.Hist), n.Depth) {
			return
		}
		builder.Expand(n)
		for _, c := range n.Children {
			grow(c)
		}
	}
	grow(root)

	// Post-processing (Theorem 4.2): perturb each leaf histogram with
	// Laplace scale l⊤/ε_hist, rebuild internal histograms as sums of
	// their leaves, clamp negatives to zero.
	scale := float64(cfg.LTop) / epsHist
	// rebuild returns the UNCLAMPED noisy histogram for summation while
	// storing a separately clamped copy on the node — the paper's order
	// (sum leaf noise upward first, then reset negatives to zero). Letting
	// the clamp feed the sums would bias every internal count upward by
	// ≈ scale/2 per zero-ish leaf entry.
	var rebuild func(n *pst.Node) []float64
	rebuild = func(n *pst.Node) []float64 {
		var raw []float64
		if n.IsLeaf() {
			raw = make([]float64, len(n.Hist))
			for i, c := range n.Hist {
				raw[i] = c + dp.LapNoise(rng, scale)
			}
		} else {
			raw = make([]float64, len(n.Hist))
			for _, c := range n.Children {
				for i, v := range rebuild(c) {
					raw[i] += v
				}
			}
		}
		stored := make([]float64, len(raw))
		copy(stored, raw)
		clampNonNegative(stored)
		n.Hist = stored
		return raw
	}
	rebuild(root)
	pst.Release(root)

	return &Model{
		Tree:        pst.Tree{Alphabet: data.Alphabet, Root: root, EndIndex: data.Alphabet.Size},
		TreeEpsilon: epsTree,
		HistEpsilon: epsHist,
	}, nil
}

func clampNonNegative(h []float64) {
	for i, v := range h {
		if v < 0 {
			h[i] = 0
		}
	}
}

// TopK mines the k most frequent strings (length ≤ maxLen) from the model
// by best-first enumeration: the model's frequency estimate is monotone
// non-increasing under string extension (each step multiplies by a
// conditional probability ≤ 1), so branches below the current k-th best
// estimate are pruned safely.
func (m *Model) TopK(k, maxLen int) []sequence.StringCount {
	estimates := make(map[string]float64)
	// top tracks the k largest estimates seen so far (ascending), so the
	// pruning bound is top[0] once k candidates exist.
	top := make([]float64, 0, k+1)
	record := func(v float64) {
		i := sort.SearchFloat64s(top, v)
		top = append(top, 0)
		copy(top[i+1:], top[i:])
		top[i] = v
		if len(top) > k {
			top = top[1:]
		}
	}
	var expand func(prefix []sequence.Symbol, est float64)
	expand = func(prefix []sequence.Symbol, est float64) {
		if len(prefix) > 0 {
			estimates[sequence.Key(prefix)] = est
			record(est)
		}
		if len(prefix) >= maxLen {
			return
		}
		bound := -1.0
		if len(top) == k {
			bound = top[0]
		}
		// Extend the estimate one symbol at a time (Equation 12): for an
		// empty prefix the estimate is the root histogram count, after
		// that est(prefix+x) = est(prefix)·P(x | prefix).
		var dist []float64
		if len(prefix) > 0 {
			dist = m.ConditionalDist(prefix)
			if dist == nil {
				return
			}
		}
		for x := 0; x < m.Alphabet.Size; x++ {
			var e float64
			if len(prefix) == 0 {
				e = m.Root.Hist[x]
			} else {
				e = est * dist[x]
			}
			if e <= 0 || (bound >= 0 && e < bound) {
				continue
			}
			next := append(append([]sequence.Symbol(nil), prefix...), sequence.Symbol(x))
			expand(next, e)
		}
	}
	expand(nil, 0)
	return sequence.TopKOfFloat(estimates, k)
}
