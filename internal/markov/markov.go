// Package markov implements the paper's Section 4: the PrivTree extension
// that builds differentially private prediction suffix trees (PSTs) on
// sequence data. The split decision uses the monotone score of Equation
// (13), c(v) = ‖hist(v)‖₁ − max_x hist(v)[x], whose sensitivity under one
// sequence insertion is l⊤ (Theorem 4.1); histograms are released in a
// post-processing step (Theorem 4.2) with the β-proportional budget split
// of Section 4.2.
//
// Every node's noise — the split decision and, for leaves, the released
// histogram — is drawn from a splittable dp.Stream keyed by the node's
// context path, so the released model is a pure function of (data, config,
// seed) and subtrees can be built concurrently on a bounded worker pool
// (Config.Workers) with byte-identical serial/parallel output, exactly like
// the spatial pipeline in internal/core.
package markov

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"privtree/internal/core"
	"privtree/internal/dp"
	"privtree/internal/pst"
	"privtree/internal/sequence"
)

// Noise-stream tags: the split decision uses the decider's own tag; leaf
// histogram slot x draws under tag tagHistBase+x, so every draw at a node
// is independent and depends only on (seed, context path, tag).
const tagHistBase = 2

// parallelCutoff is the minimum number of prediction points in a node's
// window before its child subtrees are worth fanning out to worker
// goroutines; below it the partition/tally work is cheaper than the
// handoff.
const parallelCutoff = 2048

// Config parameterizes the private PST build.
type Config struct {
	// Epsilon is the TOTAL privacy budget; it is split as ε/β for tree
	// construction and ε·(β−1)/β for histogram release, the paper's
	// recommendation (the score sums β−1 histogram counts, so it is about
	// β−1 times more noise-resilient than a single count).
	Epsilon float64
	// LTop is l⊤, the bound on sequence length (counting & but not $).
	// Sequences longer than l⊤ must have been truncated beforehand (use
	// sequence.Corpus.Truncate); Build rejects datasets violating the
	// bound, since the privacy guarantee would silently be void.
	LTop int
	// Theta is the split threshold; the paper uses 0.
	Theta float64
	// MaxDepth guards recursion (a PST cannot usefully be deeper than
	// l⊤ anyway); 0 means l⊤+1.
	MaxDepth int
	// Workers bounds the goroutines used to build the PST: 0 means
	// GOMAXPROCS, 1 forces a serial build. Path-keyed noise makes the
	// released model identical at every setting.
	Workers int
}

// Model is a released private PST: the tree structure plus noisy
// prediction histograms. It embeds pst.Tree, so frequency estimation and
// synthetic generation come from the exact-model code paths operating on
// the noisy histograms.
type Model struct {
	pst.Tree
	// TreeEpsilon and HistEpsilon record the realized budget split.
	TreeEpsilon float64
	HistEpsilon float64
}

// Score is Equation (13): histogram magnitude minus its largest count. It
// is monotone (Lemma 4.1) and small when the histogram is small (C2) or
// dominated by one symbol, i.e. low entropy (C3).
func Score(hist []float64) float64 {
	sum, maxC := 0.0, 0.0
	for _, c := range hist {
		sum += c
		if c > maxC {
			maxC = c
		}
	}
	return sum - maxC
}

// Build constructs the private PST from per-slice data; it is a
// convenience wrapper that converts to columnar form and calls BuildCorpus.
func Build(data *sequence.Dataset, cfg Config, rng *rand.Rand) (*Model, error) {
	return BuildCorpus(sequence.CorpusOfDataset(data), cfg, rng)
}

// BuildCorpus constructs the private PST over columnar data. The procedure
// is Algorithm 2 with the three changes of Section 4.2: the tree is a PST
// of fanout β=|I|+1, the score is Equation (13), and the released structure
// carries noisy histograms produced by the post-processing step.
//
// rng seeds the splittable per-node noise stream (one draw is taken from
// rng), so the result is a pure function of (data, cfg, seed) regardless of
// cfg.Workers.
func BuildCorpus(data *sequence.Corpus, cfg Config, rng *rand.Rand) (*Model, error) {
	if cfg.LTop < 1 {
		return nil, fmt.Errorf("markov: LTop must be >= 1, got %d", cfg.LTop)
	}
	for i := 0; i < data.N(); i++ {
		if el := data.EffectiveLen(i); el > cfg.LTop {
			return nil, fmt.Errorf("markov: sequence %d has effective length %d > LTop %d; truncate first", i, el, cfg.LTop)
		}
	}
	beta := data.Alphabet.Size + 1
	if cfg.MaxDepth == 0 {
		cfg.MaxDepth = cfg.LTop + 1
	}
	budget := dp.NewBudget(cfg.Epsilon)
	epsTree := cfg.Epsilon / float64(beta)
	epsHist := cfg.Epsilon - epsTree
	budget.MustSpend(epsTree)
	budget.MustSpend(epsHist)

	// Tree construction: Theorem 4.1's noise scale comes out of the core
	// parameterization with Sensitivity = l⊤.
	params := core.Params{
		Epsilon:     epsTree,
		Fanout:      beta,
		Theta:       cfg.Theta,
		Sensitivity: float64(cfg.LTop),
		MaxDepth:    cfg.MaxDepth,
		Workers:     cfg.Workers,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	workers := params.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	bc := &buildCtx{
		dec: core.NewDecider(params, nil),
		k:   data.Alphabet.Size,
		// Leaf release (Theorem 4.2): Laplace scale l⊤/ε_hist per slot.
		histScale: float64(cfg.LTop) / epsHist,
	}
	if workers > 1 {
		// Counting semaphore for extra subtree workers beyond this one.
		bc.sem = make(chan struct{}, workers-1)
	}

	b := pst.NewBuilder(data, 256)
	root, w := b.NewRoot()
	var sc pst.Scratch
	bc.expand(b, root, w, 0, 0, false, dp.NewStream(rng.Uint64()), &sc)

	// Post-processing (Theorem 4.2): leaf histograms were perturbed inline
	// from their path streams; internal histograms are rebuilt as sums of
	// their leaves' RAW noisy values by one reverse arena scan, and only
	// then are negatives clamped to zero — the paper's order (letting the
	// clamp feed the sums would bias every internal count upward by
	// ≈ scale/2 per zero-ish leaf entry).
	t := b.Build()
	t.SumInternalHists()
	t.ClampHists()
	t.Finalize()

	return &Model{
		Tree:        *t,
		TreeEpsilon: epsTree,
		HistEpsilon: epsHist,
	}, nil
}

// buildCtx carries the loop-invariant state of one PST construction.
type buildCtx struct {
	dec       *core.Decider
	k         int
	histScale float64
	sem       chan struct{} // non-nil: parallel fan-out permitted
}

// expand grows the subtree rooted at node idx of b. The node's split
// decision and (for leaves) its histogram noise are drawn from stream;
// child x recurses with stream.Child(x). When the semaphore has free slots
// and the window is large enough, child subtrees are built concurrently in
// per-subtree builders and spliced back in child order, which reproduces
// the serial arena layout exactly.
func (c *buildCtx) expand(b *pst.Builder, idx int32, w pst.Window, ctxLen, depth int, anchored bool, stream dp.Stream, sc *pst.Scratch) {
	hist := b.Hist(idx)
	// C1: a $-anchored context cannot be extended; this depends only on
	// dom(v), so applying it costs no privacy.
	if anchored || !c.dec.ShouldSplitAt(Score(hist), depth, stream) {
		// Leaf: release the histogram by adding path-keyed Laplace noise
		// per slot. The exact counts are overwritten in place.
		for x := range hist {
			hist[x] += stream.Laplace(tagHistBase+uint64(x), c.histScale)
		}
		return
	}
	first, wins := b.Expand(idx, w, ctxLen, sc)

	// Fan out only when the pool looks like it has a free slot; the check
	// is racy but purely a heuristic — both branches produce the identical
	// arena layout, so it affects wall-clock only, never the result.
	if c.sem != nil && w.Len() >= parallelCutoff && len(c.sem) < cap(c.sem) {
		subs := make([]*pst.Builder, c.k+1)
		var wg sync.WaitGroup
		for x := 0; x <= c.k; x++ {
			sub := b.NewSub(first + int32(x))
			subs[x] = sub
			childStream := stream.Child(x)
			childW := wins[x]
			childCtx, childAnchored := ctxLen+1, false
			if x == c.k {
				childCtx, childAnchored = ctxLen, true
			}
			select {
			case c.sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-c.sem }()
					var subSc pst.Scratch
					c.expand(sub, 0, childW, childCtx, depth+1, childAnchored, childStream, &subSc)
				}()
			default:
				c.expand(sub, 0, childW, childCtx, depth+1, childAnchored, childStream, sc)
			}
		}
		wg.Wait()
		for x := range subs {
			b.Splice(first+int32(x), subs[x])
		}
		return
	}

	for x := 0; x <= c.k; x++ {
		childCtx, childAnchored := ctxLen+1, false
		if x == c.k {
			childCtx, childAnchored = ctxLen, true
		}
		c.expand(b, first+int32(x), wins[x], childCtx, depth+1, childAnchored, stream.Child(x), sc)
	}
}

// TopK mines the k most frequent strings (length ≤ maxLen) from the model;
// see pst.MineTopK for the enumeration and pruning strategy.
func (m *Model) TopK(k, maxLen int) []sequence.StringCount {
	mined := pst.MineTopK(&m.Tree, k, maxLen)
	out := make([]sequence.StringCount, len(mined))
	for i, mn := range mined {
		syms := make([]sequence.Symbol, len(mn.Syms))
		for j, x := range mn.Syms {
			syms[j] = sequence.Symbol(x)
		}
		out[i] = sequence.StringCount{Syms: syms, Count: mn.Count}
	}
	return out
}
