package markov

import (
	"math"
	"testing"

	"privtree/internal/dp"
	"privtree/internal/pst"
	"privtree/internal/sequence"
	"privtree/internal/synth"
)

func chainData(n int, seed uint64) *sequence.Dataset {
	return synth.MoocLike(n, dp.NewRand(seed))
}

func TestScoreEquation13(t *testing.T) {
	// c(v) = ‖hist‖₁ − max.
	if got := Score([]float64{3, 3, 0}); got != 3 {
		t.Fatalf("score = %v, want 3", got)
	}
	if got := Score([]float64{0, 0, 4}); got != 0 {
		t.Fatalf("dominated hist score = %v, want 0", got)
	}
	if got := Score(nil); got != 0 {
		t.Fatalf("empty score = %v", got)
	}
}

func TestScoreMonotoneUnderExpansion(t *testing.T) {
	// Lemma 4.1: c(child) ≤ c(parent) for every PST expansion. We verify
	// empirically on the exact PST of a real dataset: every expanded node's
	// children must score no higher than the node itself.
	data := chainData(2000, 1)
	trunc, _ := data.Truncate(30)
	tr := pst.BuildExact(trunc, 0, 4)
	beta := tr.Fanout()
	for i, n := range tr.Nodes {
		if n.IsLeaf() {
			continue
		}
		parent := Score(tr.HistAt(int32(i)))
		for x := 0; x < beta; x++ {
			child := Score(tr.HistAt(n.FirstChild + int32(x)))
			if child > parent+1e-9 {
				t.Fatalf("monotonicity violated: node %d child %d score %v > parent %v",
					i, x, child, parent)
			}
		}
	}
}

func TestBuildRejectsOverlongSequences(t *testing.T) {
	data := chainData(100, 3)
	// Do not truncate; some sequence will exceed a tiny l⊤.
	if _, err := Build(data, Config{Epsilon: 1, LTop: 2}, dp.NewRand(4)); err == nil {
		t.Fatal("overlong sequences accepted without truncation")
	}
}

func TestBuildRejectsBadLTop(t *testing.T) {
	data := chainData(10, 5)
	if _, err := Build(data, Config{Epsilon: 1, LTop: 0}, dp.NewRand(6)); err == nil {
		t.Fatal("LTop=0 accepted")
	}
}

func TestBuildBudgetSplit(t *testing.T) {
	data := chainData(500, 7)
	trunc, _ := data.Truncate(30)
	model, err := Build(trunc, Config{Epsilon: 1.0, LTop: 30}, dp.NewRand(8))
	if err != nil {
		t.Fatal(err)
	}
	beta := float64(data.Alphabet.Size + 1)
	if math.Abs(model.TreeEpsilon-1.0/beta) > 1e-12 {
		t.Fatalf("tree epsilon = %v, want ε/β = %v", model.TreeEpsilon, 1.0/beta)
	}
	if math.Abs(model.TreeEpsilon+model.HistEpsilon-1.0) > 1e-12 {
		t.Fatal("budget split does not sum to ε")
	}
}

func TestBuildHistogramsNonNegative(t *testing.T) {
	data := chainData(2000, 9)
	trunc, _ := data.Truncate(30)
	model, err := Build(trunc, Config{Epsilon: 0.1, LTop: 30}, dp.NewRand(10))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range model.Hists {
		if v < 0 {
			t.Fatalf("negative released count %v at slab index %d", v, i)
		}
	}
}

func TestBuildInternalHistsAreChildSums(t *testing.T) {
	// The release post-processing defines internal histograms as sums of
	// their children's raw noisy values, clamped afterwards — so after
	// clamping, an internal entry equals the clamp of its children's sum
	// only when no negative child leaked through... the invariant that IS
	// preserved exactly: magnitudes are finite and the structure matches
	// SumInternalHists run again on a copy (idempotence on already-summed
	// trees does not hold because clamping intervened), so instead verify
	// every internal magnitude is within the sum of child magnitudes.
	data := chainData(3000, 33)
	trunc, _ := data.Truncate(30)
	model, err := Build(trunc, Config{Epsilon: 2, LTop: 30}, dp.NewRand(34))
	if err != nil {
		t.Fatal(err)
	}
	tr := &model.Tree
	beta := tr.Fanout()
	for i, n := range tr.Nodes {
		if n.IsLeaf() {
			continue
		}
		childMags := 0.0
		for x := 0; x < beta; x++ {
			childMags += tr.Mags[n.FirstChild+int32(x)]
		}
		if tr.Mags[i] > childMags+1e-6 {
			t.Fatalf("internal node %d magnitude %v exceeds child clamped total %v", i, tr.Mags[i], childMags)
		}
	}
}

func TestModelEstimatesTrackExactCounts(t *testing.T) {
	// At a generous budget the model's top unigram estimates must be
	// within a few percent of exact counts.
	data := chainData(20000, 11)
	trunc, _ := data.Truncate(60)
	model, err := Build(trunc, Config{Epsilon: 8, LTop: 60}, dp.NewRand(12))
	if err != nil {
		t.Fatal(err)
	}
	counts := sequence.CountOccurrences(trunc, 1)
	for x := 0; x < data.Alphabet.Size; x++ {
		s := []sequence.Symbol{sequence.Symbol(x)}
		exact := float64(counts[sequence.Key(s)])
		got := model.EstimateFrequency(s)
		if exact > 1000 && math.Abs(got-exact)/exact > 0.1 {
			t.Errorf("unigram %d: estimate %v vs exact %v", x, got, exact)
		}
	}
}

func TestTopKReturnsKSortedStrings(t *testing.T) {
	data := chainData(5000, 13)
	trunc, _ := data.Truncate(40)
	model, err := Build(trunc, Config{Epsilon: 2, LTop: 40}, dp.NewRand(14))
	if err != nil {
		t.Fatal(err)
	}
	top := model.TopK(25, 4)
	if len(top) != 25 {
		t.Fatalf("topk returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Count > top[i-1].Count {
			t.Fatal("topk not sorted")
		}
	}
}

func TestTopKPrecisionHighAtLargeEpsilon(t *testing.T) {
	data := chainData(20000, 15)
	trunc, _ := data.Truncate(60)
	exact := sequence.TopK(data, 50, 4)
	model, err := Build(trunc, Config{Epsilon: 8, LTop: 60}, dp.NewRand(16))
	if err != nil {
		t.Fatal(err)
	}
	p := sequence.Precision(exact, model.TopK(50, 4), 50)
	if p < 0.7 {
		t.Fatalf("precision %v < 0.7 at ε=8", p)
	}
}

func TestGeneratePreservesLengthDistribution(t *testing.T) {
	data := chainData(20000, 17)
	trunc, _ := data.Truncate(60)
	model, err := Build(trunc, Config{Epsilon: 4, LTop: 60}, dp.NewRand(18))
	if err != nil {
		t.Fatal(err)
	}
	synthetic := model.Generate(20000, 60, dp.NewRand(19))
	tv := sequence.TotalVariation(
		data.LengthDistribution(60),
		synthetic.LengthDistribution(60),
	)
	if tv > 0.15 {
		t.Fatalf("length-distribution TV %v too large at ε=4", tv)
	}
}

func TestModelDeterministicForSeed(t *testing.T) {
	data := chainData(1000, 20)
	trunc, _ := data.Truncate(40)
	m1, err := Build(trunc, Config{Epsilon: 1, LTop: 40}, dp.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(trunc, Config{Epsilon: 1, LTop: 40}, dp.NewRand(21))
	if err != nil {
		t.Fatal(err)
	}
	if !pst.Equal(&m1.Tree, &m2.Tree) {
		t.Fatal("same seed, different trees")
	}
	s := []sequence.Symbol{0, 1}
	if m1.EstimateFrequency(s) != m2.EstimateFrequency(s) {
		t.Fatal("same seed, different estimates")
	}
}

// TestParallelBuildMatchesSerial is the tentpole determinism guarantee:
// because every node's split and histogram noise comes from a stream keyed
// by its context path, worker-pool builds must produce node-for-node
// identical arenas for every worker count.
func TestParallelBuildMatchesSerial(t *testing.T) {
	data := chainData(20000, 23)
	trunc, _ := data.Truncate(40)
	serial, err := Build(trunc, Config{Epsilon: 4, LTop: 40, Workers: 1}, dp.NewRand(24))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, err := Build(trunc, Config{Epsilon: 4, LTop: 40, Workers: workers}, dp.NewRand(24))
		if err != nil {
			t.Fatal(err)
		}
		if !pst.Equal(&serial.Tree, &par.Tree) {
			t.Fatalf("workers=%d: parallel build differs from serial", workers)
		}
	}
}

func TestLowBudgetYieldsSmallerTree(t *testing.T) {
	data := chainData(10000, 22)
	trunc, _ := data.Truncate(60)
	small, err := Build(trunc, Config{Epsilon: 0.05, LTop: 60}, dp.NewRand(23))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Build(trunc, Config{Epsilon: 8, LTop: 60}, dp.NewRand(23))
	if err != nil {
		t.Fatal(err)
	}
	if small.Size() > big.Size() {
		t.Fatalf("ε=0.05 tree (%d nodes) larger than ε=8 tree (%d)", small.Size(), big.Size())
	}
}
