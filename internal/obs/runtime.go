package obs

import (
	"runtime"
	"sync/atomic"
)

// RegisterRuntimeMetrics registers Go runtime gauges on reg, refreshed by
// a single ReadMemStats in an OnScrape hook. ReadMemStats stops the world
// briefly, so the refresh happens only when something actually scrapes.
func RegisterRuntimeMetrics(reg *Registry) {
	goroutines := reg.Gauge("privtree_go_goroutines", "Number of live goroutines.")
	heapAlloc := reg.Gauge("privtree_go_heap_alloc_bytes", "Bytes of allocated heap objects.")
	heapObjects := reg.Gauge("privtree_go_heap_objects", "Number of allocated heap objects.")
	sysBytes := reg.Gauge("privtree_go_sys_bytes", "Total bytes obtained from the OS.")
	gcRuns := reg.Gauge("privtree_go_gc_runs_total", "Completed GC cycles.")
	gcPause := reg.Gauge("privtree_go_gc_pause_total_seconds", "Cumulative GC stop-the-world pause time.")

	// One goroutine may scrape while another does; ReadMemStats itself is
	// safe, the gate just avoids piling up world-stops under scrape storms.
	var busy atomic.Bool
	reg.OnScrape(func() {
		if !busy.CompareAndSwap(false, true) {
			return
		}
		defer busy.Store(false)
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		sysBytes.Set(float64(ms.Sys))
		gcRuns.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	})
}
