package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed exposition sample.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
	// Exemplar is the OpenMetrics exemplar attached to the sample, if
	// any. The registry emits them on histogram _bucket lines only.
	Exemplar *Exemplar
}

// Exemplar is an OpenMetrics exemplar: a labelled reference observation
// (the registry emits trace_id plus the observed value) linking a
// histogram bucket back to a retained trace.
type Exemplar struct {
	Labels map[string]string
	Value  float64
}

// SeriesKey returns a canonical identity for the sample (name plus
// sorted labels) for duplicate detection and lookups in tests.
func (s Sample) SeriesKey() string {
	keys := make([]string, 0, len(s.Labels))
	for k := range s.Labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(s.Labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

// ParseText is a STRICT parser for the Prometheus text exposition format
// (version 0.0.4), used by tests to validate /metrics end to end. Beyond
// the format grammar it enforces the conventions the registry promises:
// every sample's family has a preceding # HELP and # TYPE, no family
// appears in two blocks, no series is duplicated, histogram samples only
// follow a histogram TYPE.
func ParseText(r io.Reader) ([]Sample, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var samples []Sample
	helpSeen := map[string]bool{}
	typeSeen := map[string]string{}
	seriesSeen := map[string]bool{}
	current := "" // family of the current HELP/TYPE block
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			kind, name, rest, err := parseComment(line)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", lineNo, err)
			}
			switch kind {
			case "HELP":
				if helpSeen[name] {
					return nil, fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				helpSeen[name] = true
				current = name
				_ = rest
			case "TYPE":
				if typeSeen[name] != "" {
					return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				switch rest {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return nil, fmt.Errorf("line %d: invalid TYPE %q for %q", lineNo, rest, name)
				}
				typeSeen[name] = rest
				current = name
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(s.Name, typeSeen)
		if !helpSeen[fam] {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # HELP %s", lineNo, s.Name, fam)
		}
		if typeSeen[fam] == "" {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE %s", lineNo, s.Name, fam)
		}
		if fam != current {
			return nil, fmt.Errorf("line %d: sample %q outside its family block (current %q)", lineNo, s.Name, current)
		}
		if fam != s.Name && typeSeen[fam] != "histogram" && typeSeen[fam] != "summary" {
			return nil, fmt.Errorf("line %d: suffixed sample %q under non-histogram family %q", lineNo, s.Name, fam)
		}
		if s.Exemplar != nil && (!strings.HasSuffix(s.Name, "_bucket") || typeSeen[fam] != "histogram") {
			return nil, fmt.Errorf("line %d: exemplar on non-histogram-bucket sample %q", lineNo, s.Name)
		}
		key := s.SeriesKey()
		if seriesSeen[key] {
			return nil, fmt.Errorf("line %d: duplicate series %s", lineNo, key)
		}
		seriesSeen[key] = true
		samples = append(samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return samples, nil
}

// familyOf strips a histogram/summary suffix if (and only if) the
// stripped base is a family with a registered TYPE.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

func parseComment(line string) (kind, name, rest string, err error) {
	body, ok := strings.CutPrefix(line, "# ")
	if !ok {
		// Bare comments are legal in the format; the registry never emits
		// them, so reject to keep the strict contract.
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	kind, body, ok = strings.Cut(body, " ")
	if !ok || (kind != "HELP" && kind != "TYPE") {
		return "", "", "", fmt.Errorf("malformed comment %q", line)
	}
	name, rest, _ = strings.Cut(body, " ")
	if err := checkMetricName(name); err != nil {
		return "", "", "", err
	}
	return kind, name, rest, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample %q", line)
	}
	s.Name = line[:i]
	if err := checkMetricName(s.Name); err != nil {
		return s, err
	}
	rest := line[i:]
	if rest[0] == '{' {
		var err error
		rest, err = parseLabels(rest[1:], s.Labels)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
	}
	val := strings.TrimSpace(rest)
	if before, after, ok := strings.Cut(val, " # "); ok {
		// OpenMetrics exemplar: VALUE # {labels} EXEMPLAR_VALUE.
		ex, err := parseExemplar(after)
		if err != nil {
			return s, fmt.Errorf("sample %q: %w", s.Name, err)
		}
		s.Exemplar = &ex
		val = strings.TrimSpace(before)
	}
	// Reject a trailing timestamp (legal in the format, never emitted by
	// the registry) and anything else after the value.
	if strings.ContainsAny(val, " \t") {
		return s, fmt.Errorf("sample %q: trailing fields after value", s.Name)
	}
	v, err := parseValue(val)
	if err != nil {
		return s, fmt.Errorf("sample %q: %w", s.Name, err)
	}
	s.Value = v
	return s, nil
}

// parseExemplar consumes `{name="value",…} value` — the exemplar half of
// a bucket line. Strict like the rest of the parser: no timestamp, no
// trailing fields.
func parseExemplar(s string) (Exemplar, error) {
	ex := Exemplar{Labels: map[string]string{}}
	if !strings.HasPrefix(s, "{") {
		return ex, fmt.Errorf("exemplar must open with labels, near %q", s)
	}
	rest, err := parseLabels(s[1:], ex.Labels)
	if err != nil {
		return ex, fmt.Errorf("exemplar: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if strings.ContainsAny(rest, " \t") {
		return ex, fmt.Errorf("exemplar: trailing fields after value")
	}
	v, err := parseValue(rest)
	if err != nil {
		return ex, fmt.Errorf("exemplar: %w", err)
	}
	ex.Value = v
	return ex, nil
}

// parseLabels consumes `name="value",…}` and returns the remainder of
// the line after the closing brace.
func parseLabels(rest string, out map[string]string) (string, error) {
	for {
		rest = strings.TrimLeft(rest, " ")
		if strings.HasPrefix(rest, "}") {
			return rest[1:], nil
		}
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return "", fmt.Errorf("malformed labels near %q", rest)
		}
		name := strings.TrimSpace(rest[:eq])
		if err := checkLabelName(name); err != nil {
			return "", err
		}
		rest = rest[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", fmt.Errorf("label %s: value not quoted", name)
		}
		val, rem, err := parseQuoted(rest[1:])
		if err != nil {
			return "", fmt.Errorf("label %s: %w", name, err)
		}
		if _, dup := out[name]; dup {
			return "", fmt.Errorf("duplicate label %s", name)
		}
		out[name] = val
		rest = rem
		switch {
		case strings.HasPrefix(rest, ","):
			rest = rest[1:]
		case strings.HasPrefix(rest, "}"):
			return rest[1:], nil
		default:
			return "", fmt.Errorf("malformed labels near %q", rest)
		}
	}
}

// parseQuoted consumes an escaped label value up to its closing quote;
// only \\, \", and \n escapes are valid.
func parseQuoted(rest string) (val, rem string, err error) {
	var b strings.Builder
	for i := 0; i < len(rest); i++ {
		switch rest[i] {
		case '"':
			return b.String(), rest[i+1:], nil
		case '\\':
			i++
			if i >= len(rest) {
				return "", "", fmt.Errorf("dangling escape")
			}
			switch rest[i] {
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case 'n':
				b.WriteByte('\n')
			default:
				return "", "", fmt.Errorf("invalid escape \\%c", rest[i])
			}
		case '\n':
			return "", "", fmt.Errorf("raw newline in label value")
		default:
			b.WriteByte(rest[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	case "NaN":
		return strconv.ParseFloat("NaN", 64)
	case "":
		return 0, fmt.Errorf("missing value")
	}
	return strconv.ParseFloat(s, 64)
}
