package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Label is one name=value pair attached to a metric series.
type Label struct {
	Name, Value string
}

// metricType is the Prometheus TYPE of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance within a family.
type series struct {
	// labels is the pre-rendered, escaped `{a="b",c="d"}` suffix (empty
	// for unlabeled series), fixed at registration so scrapes do no
	// per-series formatting work beyond the value itself.
	labels string

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family is one named metric with its HELP/TYPE and every labeled series.
type family struct {
	name, help string
	typ        metricType
	buckets    []float64 // histogram families only
	series     []*series // registration order
	byLabels   map[string]*series
}

// Registry is a named-metric registry: get-or-create registration under
// one lock (so concurrent handler setup can never race a scrape or
// duplicate a series — the fix for the old byRoute snapshot race), plus
// Prometheus text exposition. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families []*family // registration order
	byName   map[string]*family
	hooks    []func() // run at the start of every scrape
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// Counter returns the counter named name with the given labels, creating
// family and series as needed. Registration panics on an invalid name, a
// type clash with an existing family, or invalid labels — these are
// programming errors at startup, not runtime conditions.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, typeCounter, nil, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge returns the gauge named name with the given labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, typeGauge, nil, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for values that already live somewhere authoritative (a ledger's
// spent ε, a gate's in-flight count) and must not be shadowed by a copy.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getOrCreate(name, help, typeGauge, nil, labels)
	s.fn = fn
}

// Histogram returns the histogram named name with the given labels. The
// bucket ladder is a property of the FAMILY: the first registration fixes
// it, later series must pass nil or an identical ladder. Bounds must be
// strictly increasing and finite.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, typeHistogram, buckets, labels)
	if s.hist == nil {
		r.mu.Lock()
		fam := r.byName[name]
		r.mu.Unlock()
		s.hist = newHistogram(fam.buckets)
	}
	return s.hist
}

// OnScrape registers fn to run at the start of every WriteText, before
// any family renders — the hook point for collectors that refresh plain
// gauges from a snapshot source (e.g. runtime.ReadMemStats).
func (r *Registry) OnScrape(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Names returns every registered family name in registration order (the
// metric-naming-convention test iterates it).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.families))
	for i, f := range r.families {
		out[i] = f.name
	}
	return out
}

func (r *Registry) getOrCreate(name, help string, typ metricType, buckets []float64, labels []Label) *series {
	if err := checkMetricName(name); err != nil {
		panic("obs: " + err.Error())
	}
	key, rendered := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	fam, ok := r.byName[name]
	if !ok {
		fam = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		if typ == typeHistogram {
			if len(buckets) == 0 {
				buckets = DefTimeBuckets
			}
			if err := checkBuckets(buckets); err != nil {
				panic("obs: histogram " + name + ": " + err.Error())
			}
			fam.buckets = append([]float64(nil), buckets...)
		}
		r.byName[name] = fam
		r.families = append(r.families, fam)
	}
	if fam.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, fam.typ, typ))
	}
	if typ == typeHistogram && buckets != nil && !equalBuckets(fam.buckets, buckets) {
		panic(fmt.Sprintf("obs: histogram %q re-registered with different buckets", name))
	}
	s, ok := fam.byLabels[key]
	if !ok {
		s = &series{labels: rendered}
		fam.byLabels[key] = s
		fam.series = append(fam.series, s)
	}
	return s
}

func checkBuckets(b []float64) error {
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("bucket bound %v is not finite", v)
		}
		if i > 0 && v <= b[i-1] {
			return fmt.Errorf("bucket bounds not strictly increasing at %v", v)
		}
	}
	return nil
}

func equalBuckets(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkMetricName enforces the Prometheus metric-name grammar
// [a-zA-Z_:][a-zA-Z0-9_:]*. privtree's own stricter convention
// (^privtree_[a-z0-9_]+$) is pinned by a test over the server registry,
// not here, so the package stays reusable.
func checkMetricName(name string) error {
	if name == "" {
		return fmt.Errorf("empty metric name")
	}
	for i, c := range name {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid metric name %q", name)
		}
	}
	return nil
}

func checkLabelName(name string) error {
	if name == "" {
		return fmt.Errorf("empty label name")
	}
	for i, c := range name {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return fmt.Errorf("invalid label name %q", name)
		}
	}
	return nil
}

// renderLabels returns a canonical identity key (sorted) and the
// exposition-ready rendering (registration order) of a label set.
func renderLabels(labels []Label) (key, rendered string) {
	if len(labels) == 0 {
		return "", ""
	}
	for _, l := range labels {
		if err := checkLabelName(l.Name); err != nil {
			panic("obs: " + err.Error())
		}
		// "le" is reserved for histogram buckets at registration time only;
		// the exposition parser accepts it, of course.
		if l.Name == "le" {
			panic(`obs: label name "le" is reserved for histogram buckets`)
		}
	}
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
	var kb strings.Builder
	for _, l := range sorted {
		kb.WriteString(l.Name)
		kb.WriteByte('=')
		kb.WriteString(l.Value)
		kb.WriteByte(',')
	}
	var rb strings.Builder
	rb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			rb.WriteByte(',')
		}
		rb.WriteString(l.Name)
		rb.WriteString(`="`)
		rb.WriteString(escapeLabelValue(l.Value))
		rb.WriteByte('"')
	}
	rb.WriteByte('}')
	return kb.String(), rb.String()
}

// escapeLabelValue applies the exposition-format escapes: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, c := range v {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp applies the HELP-line escapes: backslash and newline.
func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): scrape hooks first, then every family in
// registration order with its HELP/TYPE header and series.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	hooks := append([]func(){}, r.hooks...)
	r.mu.Unlock()
	// Hooks run OUTSIDE the registry lock: a hook is allowed to register
	// late metrics or touch instruments guarded elsewhere.
	for _, h := range hooks {
		h()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	buf := make([]byte, 0, 4096)
	for _, fam := range r.families {
		buf = buf[:0]
		buf = append(buf, "# HELP "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, escapeHelp(fam.help)...)
		buf = append(buf, "\n# TYPE "...)
		buf = append(buf, fam.name...)
		buf = append(buf, ' ')
		buf = append(buf, fam.typ...)
		buf = append(buf, '\n')
		for _, s := range fam.series {
			switch fam.typ {
			case typeHistogram:
				buf = appendHistogram(buf, fam.name, s.labels, s.hist)
			default:
				var v float64
				switch {
				case s.counter != nil:
					v = float64(s.counter.Value())
				case s.fn != nil:
					v = s.fn()
				case s.gauge != nil:
					v = s.gauge.Value()
				}
				buf = append(buf, fam.name...)
				buf = append(buf, s.labels...)
				buf = append(buf, ' ')
				buf = appendValue(buf, v)
				buf = append(buf, '\n')
			}
		}
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendHistogram renders one histogram series: cumulative _bucket rows
// (le is an ADDITIONAL label, merged into any series labels) each
// carrying its latest OpenMetrics exemplar when one exists, then _sum
// and _count.
func appendHistogram(buf []byte, name, labels string, h *Histogram) []byte {
	bounds, cum := h.Buckets()
	for i, le := range bounds {
		buf = append(buf, name...)
		buf = append(buf, "_bucket"...)
		buf = appendLabelsWith(buf, labels, "le", formatLe(le))
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, cum[i], 10)
		buf = h.appendExemplar(buf, i)
		buf = append(buf, '\n')
	}
	buf = append(buf, name...)
	buf = append(buf, "_sum"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = appendValue(buf, h.Sum())
	buf = append(buf, '\n')
	buf = append(buf, name...)
	buf = append(buf, "_count"...)
	buf = append(buf, labels...)
	buf = append(buf, ' ')
	buf = strconv.AppendUint(buf, h.Count(), 10)
	buf = append(buf, '\n')
	return buf
}

// appendLabelsWith merges one extra label into a pre-rendered label set.
func appendLabelsWith(buf []byte, labels, name, value string) []byte {
	if labels == "" {
		buf = append(buf, '{')
	} else {
		buf = append(buf, labels[:len(labels)-1]...) // drop the closing '}'
		buf = append(buf, ',')
	}
	buf = append(buf, name...)
	buf = append(buf, `="`...)
	buf = append(buf, escapeLabelValue(value)...)
	buf = append(buf, `"}`...)
	return buf
}

func formatLe(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendValue renders a sample value: integers without an exponent where
// possible, +Inf/-Inf/NaN per the format.
func appendValue(buf []byte, v float64) []byte {
	switch {
	case math.IsInf(v, 1):
		return append(buf, "+Inf"...)
	case math.IsInf(v, -1):
		return append(buf, "-Inf"...)
	case math.IsNaN(v):
		return append(buf, "NaN"...)
	}
	return strconv.AppendFloat(buf, v, 'g', -1, 64)
}

// ServeHTTP makes the registry an http.Handler serving the exposition
// with the conventional content type.
func (r *Registry) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = r.WriteText(w)
}
