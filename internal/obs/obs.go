// Package obs is privtree's dependency-free instrumentation core: atomic
// counters, gauges, fixed-bucket histograms, and sliding-window rates
// that cost ZERO heap allocations per observation, collected in a named
// registry that renders the Prometheus text exposition format.
//
// Design constraints, in order:
//
//  1. Hot-path observations (Counter.Inc, Histogram.Observe, Window.Add,
//     Gauge.Set) are lock-free and allocation-free — the serving plane
//     answers ~hundreds of thousands of queries per second on one core,
//     so instrumentation must be invisible there. Guard tests pin this
//     with testing.AllocsPerRun.
//  2. Registration (Registry.Counter, …) is mutex-guarded and get-or-
//     create, so concurrent handler setup can never race a scrape or
//     lose a counter; callers resolve their instruments once, at
//     registration time, and the request path touches only atomics.
//  3. Exposition is pull-only and allocation-tolerant: WriteText walks
//     the registry under its lock and renders valid Prometheus text
//     format (HELP/TYPE once per family, escaped labels, cumulative
//     histogram buckets).
//
// The package also carries the request-trace facility (trace.go): a
// per-request Trace accumulates named spans (stage + duration) and rides
// the context from HTTP handler through Session.ReleaseContext down to
// the store's WAL fsyncs, so one trace ID explains where a release's
// wall-clock — and its ε — went.
package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is ready
// to use; Inc and Add are lock-free and allocation-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (callers must not pass a negative delta via conversion;
// counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 value that can go up and down. The zero value is
// ready to use; all methods are lock-free and allocation-free.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add moves the gauge by delta (CAS loop; contended adds retry).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// DefTimeBuckets are the default latency histogram bounds, in seconds:
// 100µs to 10s in a coarse exponential ladder. They bracket everything
// the server does, from a cached-release fetch (~100µs) through a WAL
// fsync (~ms) to a 100k-point tree build (~tens of ms) and a deadline'd
// request (seconds).
var DefTimeBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
	0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations. Buckets
// are fixed at registration; Observe is lock-free and allocation-free.
// Bucket counts, the total count, and the sum are each individually
// atomic — a scrape may catch an observation between its bucket and sum
// updates, which Prometheus tolerates by design (counters are scraped,
// not snapshotted).
type Histogram struct {
	// bounds are the inclusive upper bounds of each bucket, strictly
	// increasing; an implicit +Inf bucket follows the last bound.
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last is the +Inf bucket
	count  atomic.Uint64
	sum    Gauge
	// exemplars holds the latest traced observation per bucket,
	// rendered as OpenMetrics exemplars on the _bucket lines. Fixed
	// storage allocated at registration; ObserveTraced copies the trace
	// ID into place under a short per-bucket mutex, so the traced path
	// stays allocation-free too.
	exemplars []exemplar
}

// exemplar is one bucket's latest traced observation. The ID lives in a
// fixed array so overwriting it never allocates.
type exemplar struct {
	mu  sync.Mutex
	id  [64]byte
	n   int // bytes of id in use; 0 = no exemplar yet
	val float64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Uint64, len(bounds)+1),
		exemplars: make([]exemplar, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.counts[h.bucketIndex(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// bucketIndex returns the bucket for v. Linear scan: bucket ladders are
// short (~16 bounds) and the scan is branch-predictable, beating binary
// search at this size.
func (h *Histogram) bucketIndex(v float64) int {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

// ObserveTraced records one observation and, when traceID fits the
// exemplar charset, pins it as the bucket's exemplar so the latency
// histogram links back to a retained trace. Allocation-free: the ID is
// copied into the bucket's fixed storage.
func (h *Histogram) ObserveTraced(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" || !ValidTraceID(traceID) {
		return
	}
	e := &h.exemplars[h.bucketIndex(v)]
	e.mu.Lock()
	e.n = copy(e.id[:], traceID)
	e.val = v
	e.mu.Unlock()
}

// appendExemplar renders bucket i's exemplar as
// ` # {trace_id="…"} value` into buf (nothing when the bucket has never
// seen a traced observation). Exposition-path only.
func (h *Histogram) appendExemplar(buf []byte, i int) []byte {
	if h.exemplars == nil {
		return buf
	}
	e := &h.exemplars[i]
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.n == 0 {
		return buf
	}
	buf = append(buf, ` # {trace_id="`...)
	buf = append(buf, e.id[:e.n]...)
	buf = append(buf, `"} `...)
	return appendValue(buf, e.val)
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return h.sum.Value() }

// Buckets returns the bucket upper bounds and the CUMULATIVE count at or
// below each bound, ending with the implicit +Inf bucket (equal to
// Count up to scrape skew). Allocates; intended for exposition and tests.
func (h *Histogram) Buckets() (bounds []float64, cumulative []uint64) {
	bounds = make([]float64, len(h.bounds)+1)
	copy(bounds, h.bounds)
	bounds[len(h.bounds)] = math.Inf(1)
	cumulative = make([]uint64, len(h.counts))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		cumulative[i] = cum
	}
	return bounds, cumulative
}

// windowBuckets is the ring size of a Window: it must exceed any rate
// window queried so the ring never wraps inside one.
const windowBuckets = 64

// Window is a sliding-window event-rate estimator: a ring of per-second
// buckets over the last windowBuckets seconds. Add is lock-free and
// allocation-free; Rate folds the ring. It exists because a lifetime
// average lies — a server idle for an hour reports near-zero throughput
// for the burst it is currently serving (the bug this type replaced).
//
// The ring is racy by design: a bucket reset can drop a concurrent
// add's events from that second. Rates are estimates; the lifetime total
// belongs in a Counter next to the Window.
type Window struct {
	// now returns the current unix second; tests substitute a fake clock.
	now     func() int64
	buckets [windowBuckets]struct {
		sec atomic.Int64
		n   atomic.Uint64
	}
}

// NewWindow returns a sliding window on the real clock.
func NewWindow() *Window {
	return &Window{now: func() int64 { return time.Now().Unix() }}
}

// newWindowClock returns a window on a substitute clock (tests).
func newWindowClock(now func() int64) *Window { return &Window{now: now} }

// Add records n events at the current second.
func (w *Window) Add(n uint64) {
	sec := w.now()
	b := &w.buckets[int(sec%windowBuckets)]
	if old := b.sec.Load(); old != sec {
		// Claim the bucket for this second; the loser of the race simply
		// adds into the freshly reset bucket.
		if b.sec.CompareAndSwap(old, sec) {
			b.n.Store(0)
		}
	}
	b.n.Add(n)
}

// Rate returns events per second over the trailing window (capped at
// windowBuckets-1 seconds). The current, partially elapsed second is
// included — a burst shows up immediately — and the divisor is the full
// window, so the estimate is conservative during ramp-up.
func (w *Window) Rate(window time.Duration) float64 {
	secs := int64(window / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > windowBuckets-1 {
		secs = windowBuckets - 1
	}
	now := w.now()
	var total uint64
	for i := range w.buckets {
		b := &w.buckets[i]
		if sec := b.sec.Load(); sec > now-secs && sec <= now {
			total += b.n.Load()
		}
	}
	return float64(total) / float64(secs)
}
