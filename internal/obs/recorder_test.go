package obs

import (
	"strings"
	"testing"
	"time"
)

func recTrace(spans ...string) *Trace {
	tr := NewTrace()
	for _, name := range spans {
		tr.Add(name, time.Now(), time.Millisecond)
	}
	return tr
}

func TestFlightRecorderRetention(t *testing.T) {
	f := NewFlightRecorder(64, 100*time.Millisecond, 10)

	// Errors are always kept.
	for i := 0; i < 5; i++ {
		if !f.Record(recTrace("debit"), "create_release", "d", 500, time.Now(), time.Millisecond) {
			t.Fatalf("error %d not retained", i)
		}
	}
	// Slow requests are always kept.
	if !f.Record(recTrace("build"), "ingest", "taxi", 200, time.Now(), 150*time.Millisecond) {
		t.Fatal("slow request not retained")
	}
	// Normal traffic is downsampled 1-in-10.
	kept := 0
	for i := 0; i < 100; i++ {
		if f.Record(recTrace(), "query", "d", 200, time.Now(), time.Millisecond) {
			kept++
		}
	}
	if kept != 10 {
		t.Fatalf("normal traffic: kept %d of 100, want exactly 10", kept)
	}
	seen, total := f.Counts()
	if seen != 106 || total != 16 {
		t.Fatalf("counts = (%d seen, %d kept), want (106, 16)", seen, total)
	}

	slow := f.Snapshot(-1, func(r *TraceRecord) bool { return r.Retained == "slow" })
	if len(slow) != 1 || slow[0].Dataset != "taxi" || len(slow[0].Spans) != 1 {
		t.Fatalf("slow snapshot = %+v", slow)
	}
	errs := f.Snapshot(-1, func(r *TraceRecord) bool { return r.Retained == "error" })
	if len(errs) != 5 {
		t.Fatalf("error snapshot has %d records, want 5", len(errs))
	}
}

func TestFlightRecorderRingEviction(t *testing.T) {
	f := NewFlightRecorder(4, 0, 1)
	ids := make([]string, 10)
	for i := range ids {
		tr := recTrace("debit", "build")
		ids[i] = tr.ID()
		f.Record(tr, "r", "d", 200, time.Now(), time.Duration(i)*time.Millisecond)
	}
	// Only the last 4 survive; the newest is first in an unfiltered snapshot.
	for i, id := range ids {
		_, ok := f.Lookup(id)
		if want := i >= 6; ok != want {
			t.Fatalf("Lookup(ids[%d]) = %v, want %v", i, ok, want)
		}
	}
	snap := f.Snapshot(-1, nil)
	if len(snap) != 4 || snap[0].TraceID != ids[9] || snap[3].TraceID != ids[6] {
		t.Fatalf("snapshot order wrong: %+v", snap)
	}
	if got := f.Snapshot(2, nil); len(got) != 2 || got[0].TraceID != ids[9] {
		t.Fatalf("limited snapshot = %+v", got)
	}
	if rec, ok := f.Lookup(ids[9]); !ok || len(rec.Spans) != 2 || rec.Spans[0].Name != "debit" {
		t.Fatalf("Lookup record = %+v, %v", rec, ok)
	}
}

// TestFlightRecorderZeroAlloc pins the tentpole constraint: recording
// into a warmed ring allocates nothing — span storage is reused from the
// evicted slot.
func TestFlightRecorderZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	tr := recTrace("debit", "wal_debit", "build", "envelope", "wal_commit")
	start := time.Now()
	// Warm every slot so each has span capacity.
	for i := 0; i < 16; i++ {
		f.Record(tr, "create_release", "d", 200, start, time.Millisecond)
	}
	if allocs := testing.AllocsPerRun(1000, func() {
		f.Record(tr, "create_release", "d", 200, start, time.Millisecond)
	}); allocs != 0 {
		t.Fatalf("Record: %v allocs/op, want 0", allocs)
	}
}

func TestValidTraceID(t *testing.T) {
	good := []string{NewID(), "abcdef01", strings.Repeat("a", 64), "A-Z_09zz"}
	for _, id := range good {
		if !ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = false, want true", id)
		}
	}
	bad := []string{"", "short", strings.Repeat("a", 65), "abcdef0\"", "has space", "ü12345678", "semi;colon"}
	for _, id := range bad {
		if ValidTraceID(id) {
			t.Errorf("ValidTraceID(%q) = true, want false", id)
		}
	}
}

func TestHistogramExemplars(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("privtree_demo_seconds", "demo latency", []float64{0.01, 0.1, 1})
	id := NewID()
	h.ObserveTraced(0.05, id)               // lands in the le="0.1" bucket
	h.Observe(0.05)                         // untraced observation must not disturb the exemplar
	h.ObserveTraced(0.5, "not a valid id!") // rejected, no exemplar on le="1"

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `le="0.1"} 2 # {trace_id="`+id+`"} 0.05`) {
		t.Fatalf("exposition missing exemplar:\n%s", text)
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatalf("strict parse of exemplar exposition: %v", err)
	}
	byKey := map[string]Sample{}
	for _, s := range samples {
		byKey[s.SeriesKey()] = s
	}
	s, ok := byKey[`privtree_demo_seconds_bucket{le=0.1}`]
	if !ok {
		t.Fatalf("bucket sample missing; keys: %v", keysOf(byKey))
	}
	if s.Exemplar == nil || s.Exemplar.Labels["trace_id"] != id || s.Exemplar.Value != 0.05 {
		t.Fatalf("parsed exemplar = %+v", s.Exemplar)
	}
	if s := byKey[`privtree_demo_seconds_bucket{le=1}`]; s.Exemplar != nil {
		t.Fatalf("invalid trace ID produced an exemplar: %+v", s.Exemplar)
	}

	if allocs := testing.AllocsPerRun(1000, func() {
		h.ObserveTraced(0.05, id)
	}); allocs != 0 {
		t.Fatalf("ObserveTraced: %v allocs/op, want 0", allocs)
	}
}

func keysOf(m map[string]Sample) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestParseTextRejectsMisplacedExemplars(t *testing.T) {
	cases := []struct{ name, text string }{
		{"counter", "# HELP c t\n# TYPE c counter\nc 1 # {trace_id=\"abcdef0123456789\"} 1\n"},
		{"hist_sum", "# HELP h t\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1\nh_sum 1 # {trace_id=\"abcdef0123456789\"} 1\nh_count 1\n"},
		{"malformed", "# HELP h t\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # trace_id no braces\nh_sum 1\nh_count 1\n"},
		{"no_value", "# HELP h t\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 1 # {trace_id=\"abcdef0123456789\"}\nh_sum 1\nh_count 1\n"},
	}
	for _, tc := range cases {
		if _, err := ParseText(strings.NewReader(tc.text)); err == nil {
			t.Errorf("%s: ParseText accepted misplaced/malformed exemplar", tc.name)
		}
	}
}

// TestFlightRecorderLookupPrefersInformative pins the retry shadowing
// rule: when several retained entries share one trace ID (a retried
// logical call whose later attempt hit a dedup cache), Lookup returns
// the entry with the span breakdown, not merely the newest.
func TestFlightRecorderLookupPrefersInformative(t *testing.T) {
	f := NewFlightRecorder(8, 0, 1)
	full := NewTraceWithID("shared0123456789")
	sp := full.Begin("debit")
	sp.End()
	sp = full.Begin("build")
	sp.End()
	start := time.Unix(1000, 0)
	f.Record(full, "create_release", "d", 201, start, time.Millisecond)
	empty := NewTraceWithID("shared0123456789")
	f.Record(empty, "create_release", "d", 201, start.Add(time.Second), time.Millisecond)

	rec, ok := f.Lookup("shared0123456789")
	if !ok || len(rec.Spans) != 2 {
		t.Fatalf("lookup returned ok=%v spans=%d, want the 2-span attempt", ok, len(rec.Spans))
	}
	// Snapshot still lists both, newest first.
	all := f.Snapshot(-1, nil)
	if len(all) != 2 || len(all[0].Spans) != 0 || len(all[1].Spans) != 2 {
		t.Fatalf("snapshot: %+v", all)
	}
}
