package obs

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trace is a per-request trace: a random ID plus an append-only list of
// named spans. It rides the context from the HTTP handler through
// Session.ReleaseContext down to the store's WAL fsyncs, so one ID
// explains where a release's wall-clock — and its ε — went.
//
// Every method is nil-safe: code below the handler can instrument
// unconditionally and pay nothing when no trace is installed (direct
// library use, benchmarks).
type Trace struct {
	id    string
	mu    sync.Mutex
	spans []Span
}

// Span is one named stage of a traced request.
type Span struct {
	Name  string
	Start time.Time
	Dur   time.Duration
}

// NewTrace returns a trace with a fresh 16-byte hex ID.
func NewTrace() *Trace {
	return &Trace{id: NewID()}
}

// NewTraceWithID returns a trace carrying a caller-supplied ID — the
// adoption path for an inbound X-Trace-Id header or a replicated WAL
// record, so one ID follows a request across process boundaries.
// Callers must gate untrusted IDs through ValidTraceID first.
func NewTraceWithID(id string) *Trace {
	return &Trace{id: id}
}

// NewID returns a fresh 32-hex-character trace ID (16 random bytes).
func NewID() string {
	var b [16]byte
	hi, lo := rand.Uint64(), rand.Uint64()
	for i := 0; i < 8; i++ {
		b[i] = byte(hi >> (56 - 8*i))
		b[8+i] = byte(lo >> (56 - 8*i))
	}
	const hex = "0123456789abcdef"
	id := make([]byte, 32)
	for i, c := range b {
		id[2*i] = hex[c>>4]
		id[2*i+1] = hex[c&0xf]
	}
	return string(id)
}

// ValidTraceID reports whether id is acceptable as a trace ID from an
// untrusted source: 8–64 characters from [0-9a-zA-Z_-]. The charset
// needs no escaping anywhere an ID is rendered (exemplar label values,
// WAL records, log lines), and the length bound keeps a hostile header
// from bloating retained traces.
func ValidTraceID(id string) bool {
	if len(id) < 8 || len(id) > 64 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// ID returns the trace ID, or "" on a nil trace.
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Add appends a completed span.
func (t *Trace) Add(name string, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, Dur: dur})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// AppendSpans appends the recorded spans to dst and returns it — the
// allocation-free sibling of Spans for callers that own a reusable
// buffer (the flight recorder's ring slots).
func (t *Trace) AppendSpans(dst []Span) []Span {
	if t == nil {
		return dst
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append(dst, t.spans...)
}

// SpanCount returns the number of spans recorded so far, so a caller
// can attribute the spans a sub-operation adds (everything past the
// count taken before it ran).
func (t *Trace) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Summary renders the spans as "name=dur name=dur …" sorted by span
// start, for slow-request logs.
func (t *Trace) Summary() string {
	spans := t.Spans()
	if len(spans) == 0 {
		return ""
	}
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
	var b strings.Builder
	for i, s := range spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", s.Name, s.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// SpanTimer measures one span; it is a value type so Begin/End pairs do
// not allocate. End is safe on the zero value (no-op).
type SpanTimer struct {
	t     *Trace
	name  string
	start time.Time
}

// Begin starts timing a named span on t. Safe on a nil trace — the
// returned timer's End is then a no-op.
func (t *Trace) Begin(name string) SpanTimer {
	if t == nil {
		return SpanTimer{}
	}
	return SpanTimer{t: t, name: name, start: time.Now()}
}

// End records the span.
func (st SpanTimer) End() {
	if st.t == nil {
		return
	}
	st.t.Add(st.name, st.start, time.Since(st.start))
}

// traceKey is the context key for the request trace.
type traceKey struct{}

// NewContext returns ctx carrying t.
func NewContext(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the trace carried by ctx, or nil. All Trace
// methods tolerate nil, so callers never need to check.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
