package obs

import (
	"sync"
	"time"
)

// TraceRecord is one completed request retained by the flight recorder:
// identity, outcome, and the full span breakdown, everything an operator
// needs to answer "where did this request's time go" after the response
// is long gone.
type TraceRecord struct {
	TraceID  string
	Route    string
	Dataset  string
	Status   int
	Start    time.Time
	Dur      time.Duration
	Retained string // why the record was kept: "error", "slow", or "sample"
	Spans    []Span
}

// FlightRecorder is a fixed-capacity ring buffer of completed traces
// with tail-based retention: every error (status >= 400) and every
// over-threshold trace is kept, plus a deterministic 1-in-N sample of
// normal traffic. Recording reuses the evicted slot's span storage, so
// the steady state allocates nothing per retained request; lookups are
// linear scans over the ring — an operator path, bounded by capacity,
// that never builds an index the hot path would have to maintain.
type FlightRecorder struct {
	mu     sync.Mutex
	slots  []TraceRecord
	filled int // slots in use, grows to len(slots) then stays
	next   int // ring write cursor
	normal uint64
	seen   uint64
	kept   uint64

	slow    time.Duration
	sampleN uint64
}

// NewFlightRecorder returns a recorder retaining up to capacity traces,
// keeping everything slower than slow (0 disables the slow class) and a
// deterministic 1-in-sampleN of normal traffic (1 keeps everything).
func NewFlightRecorder(capacity int, slow time.Duration, sampleN int) *FlightRecorder {
	if capacity < 1 {
		capacity = 1
	}
	if sampleN < 1 {
		sampleN = 1
	}
	return &FlightRecorder{
		slots:   make([]TraceRecord, capacity),
		slow:    slow,
		sampleN: uint64(sampleN),
	}
}

// Record applies the retention policy to one completed request and, when
// retained, copies it into the ring. Returns whether it was kept. Nil
// recorder and nil trace are both no-ops, so callers can record
// unconditionally.
func (f *FlightRecorder) Record(tr *Trace, route, dataset string, status int, start time.Time, dur time.Duration) bool {
	if f == nil || tr == nil {
		return false
	}
	why := ""
	switch {
	case status >= 400:
		why = "error"
	case f.slow > 0 && dur >= f.slow:
		why = "slow"
	}
	f.mu.Lock()
	f.seen++
	if why == "" {
		f.normal++
		if f.normal%f.sampleN != 0 {
			f.mu.Unlock()
			return false
		}
		why = "sample"
	}
	f.kept++
	slot := &f.slots[f.next]
	f.next = (f.next + 1) % len(f.slots)
	if f.filled < len(f.slots) {
		f.filled++
	}
	slot.TraceID = tr.ID()
	slot.Route = route
	slot.Dataset = dataset
	slot.Status = status
	slot.Start = start
	slot.Dur = dur
	slot.Retained = why
	slot.Spans = tr.AppendSpans(slot.Spans[:0])
	f.mu.Unlock()
	return true
}

// Lookup returns the retained record for the given trace ID. Retries
// reuse the logical call's ID, so several entries can share it (the
// attempt that did the work plus dedup cache hits); among those the most
// informative record — the one with the most spans, newest on ties —
// is the one that explains the request, and that's what a debugging
// lookup gets.
func (f *FlightRecorder) Lookup(id string) (TraceRecord, bool) {
	if f == nil || id == "" {
		return TraceRecord{}, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := len(f.slots)
	best := -1
	for i := 0; i < f.filled; i++ {
		idx := ((f.next-1-i)%n + n) % n
		if f.slots[idx].TraceID != id {
			continue
		}
		if best < 0 || len(f.slots[idx].Spans) > len(f.slots[best].Spans) {
			best = idx
		}
	}
	if best < 0 {
		return TraceRecord{}, false
	}
	return cloneRecord(f.slots[best]), true
}

// Snapshot returns up to limit retained records, newest first, for which
// keep returns true (nil keep matches everything). Records are deep
// copies — callers never alias ring storage.
func (f *FlightRecorder) Snapshot(limit int, keep func(*TraceRecord) bool) []TraceRecord {
	if f == nil || limit == 0 {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []TraceRecord
	n := len(f.slots)
	for i := 0; i < f.filled; i++ {
		if limit > 0 && len(out) >= limit {
			break
		}
		idx := ((f.next-1-i)%n + n) % n
		if keep == nil || keep(&f.slots[idx]) {
			out = append(out, cloneRecord(f.slots[idx]))
		}
	}
	return out
}

// Counts returns how many completed requests the recorder has seen and
// how many it retained — the observability of the observer, so a scrape
// can tell how aggressively the tail sampler is dropping.
func (f *FlightRecorder) Counts() (seen, kept uint64) {
	if f == nil {
		return 0, 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.seen, f.kept
}

func cloneRecord(r TraceRecord) TraceRecord {
	c := r
	c.Spans = append([]Span(nil), r.Spans...)
	return c
}
