package obs

import (
	"context"
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(1.5)
	g.Add(-0.25)
	if got := g.Value(); got != 1.25 {
		t.Fatalf("gauge = %v, want 1.25", got)
	}
}

// TestZeroAllocHotPath is the guard the package doc promises: hot-path
// observations cost zero heap allocations.
func TestZeroAllocHotPath(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("privtree_test_total", "t")
	g := reg.Gauge("privtree_test_gauge", "t")
	h := reg.Histogram("privtree_test_seconds", "t", nil)
	w := NewWindow()
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter_inc", func() { c.Inc() }},
		{"counter_add", func() { c.Add(3) }},
		{"gauge_set", func() { g.Set(1) }},
		{"gauge_add", func() { g.Add(0.5) }},
		{"hist_observe", func() { h.Observe(0.003) }},
		{"window_add", func() { w.Add(1) }},
	}
	for _, tc := range cases {
		if allocs := testing.AllocsPerRun(1000, tc.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, allocs)
		}
	}
}

// TestHistogramMonotonicity is the bucket-monotonicity property test:
// for random observation sets, cumulative bucket counts never decrease,
// the +Inf bucket equals Count, and Sum matches.
func TestHistogramMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for iter := 0; iter < 50; iter++ {
		h := newHistogram(DefTimeBuckets)
		n := rng.IntN(500)
		var want float64
		for i := 0; i < n; i++ {
			// Log-uniform over ~[1µs, 100s] so every bucket gets traffic.
			v := math.Pow(10, rng.Float64()*8-6)
			h.Observe(v)
			want += v
		}
		bounds, cum := h.Buckets()
		if len(bounds) != len(DefTimeBuckets)+1 || len(cum) != len(bounds) {
			t.Fatalf("iter %d: bounds/cum lengths %d/%d", iter, len(bounds), len(cum))
		}
		if !math.IsInf(bounds[len(bounds)-1], 1) {
			t.Fatalf("iter %d: last bound %v, want +Inf", iter, bounds[len(bounds)-1])
		}
		for i := 1; i < len(cum); i++ {
			if cum[i] < cum[i-1] {
				t.Fatalf("iter %d: cumulative counts decrease at %d: %v", iter, i, cum)
			}
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("iter %d: bounds not increasing at %d", iter, i)
			}
		}
		if got := cum[len(cum)-1]; got != uint64(n) || h.Count() != uint64(n) {
			t.Fatalf("iter %d: +Inf bucket %d, Count %d, want %d", iter, got, h.Count(), n)
		}
		if math.Abs(h.Sum()-want) > 1e-6*math.Max(1, want) {
			t.Fatalf("iter %d: sum %v, want %v", iter, h.Sum(), want)
		}
	}
}

func TestHistogramBucketAssignment(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	_, cum := h.Buckets()
	// le=1: {0.5, 1}; le=2: +{1.5, 2}; le=4: +{3, 4}; +Inf: +{5, 100}.
	want := []uint64{2, 4, 6, 8}
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative = %v, want %v", cum, want)
		}
	}
}

func TestWindowRate(t *testing.T) {
	var sec int64 = 1000
	w := newWindowClock(func() int64 { return sec })
	w.Add(100)
	sec++
	w.Add(200)
	sec++
	w.Add(300)
	// Trailing 3s window covers all three seconds: (100+200+300)/3.
	if got := w.Rate(3 * time.Second); got != 200 {
		t.Fatalf("rate(3s) = %v, want 200", got)
	}
	// Trailing 1s only sees the current second.
	if got := w.Rate(time.Second); got != 300 {
		t.Fatalf("rate(1s) = %v, want 300", got)
	}
	// An idle hour must NOT drag the rate down (the bug Window replaces):
	// jump far ahead, add a burst, and the rate reflects only the burst.
	sec += 3600
	w.Add(500)
	if got := w.Rate(time.Second); got != 500 {
		t.Fatalf("rate after idle hour = %v, want 500", got)
	}
	// Stale buckets from before the jump are excluded from a wide window.
	if got := w.Rate(30 * time.Second); got != 500.0/30 {
		t.Fatalf("rate(30s) after idle = %v, want %v", got, 500.0/30)
	}
}

func TestWindowReusesBuckets(t *testing.T) {
	var sec int64 = 50
	w := newWindowClock(func() int64 { return sec })
	w.Add(7)
	sec += windowBuckets // same ring slot, new second
	w.Add(3)
	if got := w.Rate(time.Second); got != 3 {
		t.Fatalf("rate = %v, want 3 (old bucket must reset)", got)
	}
}

// TestRegistryRace exercises concurrent get-or-create + hot-path updates
// + scrapes; run under -race this verifies registration is race-free by
// construction (satellite 2).
func TestRegistryRace(t *testing.T) {
	reg := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				c := reg.Counter("privtree_race_total", "t", Label{"route", fmt.Sprintf("r%d", j%5)})
				c.Inc()
				h := reg.Histogram("privtree_race_seconds", "t", nil, Label{"route", "x"})
				h.Observe(0.01)
				if j%50 == 0 {
					_ = reg.WriteText(&strings.Builder{})
				}
			}
		}(i)
	}
	wg.Wait()
	var total uint64
	for i := 0; i < 5; i++ {
		total += reg.Counter("privtree_race_total", "t", Label{"route", fmt.Sprintf("r%d", i)}).Value()
	}
	if total != 8*200 {
		t.Fatalf("lost increments: %d, want %d", total, 8*200)
	}
}

// TestExpositionRoundTrip renders a registry with every instrument kind
// and nasty label values, then feeds it to the strict parser.
func TestExpositionRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("privtree_requests_total", "Total requests.").Add(12)
	reg.Counter("privtree_http_requests_total", "Per-route.", Label{"route", "query"}).Add(3)
	reg.Counter("privtree_http_requests_total", "Per-route.", Label{"route", "create"}).Add(4)
	reg.Gauge("privtree_eps_remaining", "Budget.", Label{"dataset", `we"ird\na me`}).Set(0.5)
	reg.GaugeFunc("privtree_live", "Func gauge.", func() float64 { return 7 })
	h := reg.Histogram("privtree_request_seconds", "Latency.", nil, Label{"route", "query"})
	h.Observe(0.003)
	h.Observe(2)
	hooked := false
	reg.OnScrape(func() { hooked = true })

	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !hooked {
		t.Fatal("OnScrape hook did not run")
	}
	samples, err := ParseText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("ParseText: %v\nexposition:\n%s", err, buf.String())
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.SeriesKey()] = s.Value
	}
	checks := map[string]float64{
		"privtree_requests_total":                    12,
		"privtree_http_requests_total{route=query}":  3,
		"privtree_http_requests_total{route=create}": 4,
		"privtree_live":                              7,
		"privtree_request_seconds_count{route=query}": 2,
		"privtree_request_seconds_sum{route=query}":   2.003,
	}
	for k, want := range checks {
		got, ok := byKey[k]
		if !ok || math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v (present=%v), want %v", k, got, ok, want)
		}
	}
	// The escaped label value must round-trip back to the original.
	found := false
	for _, s := range samples {
		if s.Name == "privtree_eps_remaining" && s.Labels["dataset"] == "we\"ird\\na me" {
			found = true
		}
	}
	if !found {
		t.Errorf("escaped label did not round-trip; exposition:\n%s", buf.String())
	}
	// Histogram buckets must be cumulative and end at +Inf == count.
	var last float64 = -1
	var infSeen bool
	for _, s := range samples {
		if s.Name != "privtree_request_seconds_bucket" {
			continue
		}
		if s.Value < last {
			t.Errorf("bucket counts not cumulative at le=%s", s.Labels["le"])
		}
		last = s.Value
		if s.Labels["le"] == "+Inf" {
			infSeen = true
			if s.Value != 2 {
				t.Errorf("+Inf bucket = %v, want 2", s.Value)
			}
		}
	}
	if !infSeen {
		t.Error("no +Inf bucket emitted")
	}
}

func TestParseTextStrictness(t *testing.T) {
	bad := []struct{ name, in string }{
		{"no_help", "# TYPE privtree_x counter\nprivtree_x 1\n"},
		{"no_type", "# HELP privtree_x h\nprivtree_x 1\n"},
		{"dup_series", "# HELP privtree_x h\n# TYPE privtree_x counter\nprivtree_x 1\nprivtree_x 2\n"},
		{"dup_family", "# HELP privtree_x h\n# TYPE privtree_x counter\nprivtree_x 1\n# HELP privtree_x h\n# TYPE privtree_x counter\n"},
		{"bad_escape", "# HELP privtree_x h\n# TYPE privtree_x gauge\nprivtree_x{a=\"b\\q\"} 1\n"},
		{"unquoted_label", "# HELP privtree_x h\n# TYPE privtree_x gauge\nprivtree_x{a=b} 1\n"},
		{"bad_value", "# HELP privtree_x h\n# TYPE privtree_x gauge\nprivtree_x hello\n"},
		{"bad_name", "# HELP 9bad h\n# TYPE 9bad gauge\n9bad 1\n"},
		{"interleaved", "# HELP privtree_a h\n# TYPE privtree_a counter\n# HELP privtree_b h\n# TYPE privtree_b counter\nprivtree_a 1\n"},
	}
	for _, tc := range bad {
		if _, err := ParseText(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: parsed without error", tc.name)
		}
	}
	ok := "# HELP privtree_x h\n# TYPE privtree_x histogram\n" +
		"privtree_x_bucket{le=\"1\"} 1\nprivtree_x_bucket{le=\"+Inf\"} 2\nprivtree_x_sum 3\nprivtree_x_count 2\n"
	if _, err := ParseText(strings.NewReader(ok)); err != nil {
		t.Errorf("valid histogram rejected: %v", err)
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("privtree_x_total", "t")
	mustPanic("type_clash", func() { reg.Gauge("privtree_x_total", "t") })
	mustPanic("bad_name", func() { reg.Counter("9bad", "t") })
	mustPanic("bad_label", func() { reg.Counter("privtree_y_total", "t", Label{"le", "1"}) })
	reg.Histogram("privtree_h_seconds", "t", []float64{1, 2})
	mustPanic("bucket_clash", func() { reg.Histogram("privtree_h_seconds", "t", []float64{1, 3}) })
	mustPanic("bad_buckets", func() { reg.Histogram("privtree_h2_seconds", "t", []float64{2, 1}) })
}

func TestTrace(t *testing.T) {
	tr := NewTrace()
	if len(tr.ID()) != 32 {
		t.Fatalf("trace ID %q, want 32 hex chars", tr.ID())
	}
	st := tr.Begin("debit")
	time.Sleep(time.Millisecond)
	st.End()
	tr.Add("build", time.Now(), 5*time.Millisecond)
	spans := tr.Spans()
	if len(spans) != 2 || spans[0].Name != "debit" || spans[1].Name != "build" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur <= 0 {
		t.Fatalf("span duration %v, want > 0", spans[0].Dur)
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "debit=") || !strings.Contains(sum, "build=") {
		t.Fatalf("summary %q", sum)
	}

	// Nil safety: every method is a no-op on a nil trace.
	var nilT *Trace
	if nilT.ID() != "" || nilT.Spans() != nil || nilT.Summary() != "" {
		t.Fatal("nil trace not inert")
	}
	nilT.Add("x", time.Now(), 0)
	nilT.Begin("x").End()
	if FromContext(context.Background()) != nil {
		t.Fatal("FromContext on bare context != nil")
	}
	ctx := NewContext(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("trace did not ride the context")
	}
}
