package svt

import (
	"math"
	"testing"

	"privtree/internal/dp"
)

func TestCountOf(t *testing.T) {
	db := []string{"a", "b", "a", "a"}
	if got := CountOf("a")(db); got != 3 {
		t.Fatalf("count a = %v", got)
	}
	if got := CountOf("c")(db); got != 0 {
		t.Fatalf("count c = %v", got)
	}
}

func TestBinaryOutputsPerQuery(t *testing.T) {
	rng := dp.NewRand(1)
	db := []string{"a", "a", "a"}
	queries := []Query{CountOf("a"), CountOf("b"), CountOf("a")}
	out := Binary(db, queries, 1.5, 0.01, rng)
	if len(out) != 3 {
		t.Fatalf("got %d outputs", len(out))
	}
	// With negligible noise: count(a)=3 > 1.5 → 1; count(b)=0 → 0.
	if out[0] != 1 || out[1] != 0 || out[2] != 1 {
		t.Fatalf("outputs = %v", out)
	}
}

func TestVanillaStopsAfterT(t *testing.T) {
	rng := dp.NewRand(2)
	db := []string{"a", "a", "a"}
	queries := []Query{CountOf("a"), CountOf("a"), CountOf("a"), CountOf("a")}
	out := Vanilla(db, queries, 0, 0.01, 2, rng)
	released := 0
	for _, r := range out {
		if r.Released {
			released++
		}
	}
	if released != 2 {
		t.Fatalf("released %d answers, want t=2", released)
	}
	if len(out) > 2 && out[len(out)-1].Released != true {
		// The final slot must be the t-th release (the algorithm
		// terminates immediately after it).
		t.Fatalf("vanilla did not terminate at the t-th release: %v", out)
	}
}

func TestVanillaReleasesNoisyValues(t *testing.T) {
	rng := dp.NewRand(3)
	db := make([]string, 100) // 100 copies of "a"
	for i := range db {
		db[i] = "a"
	}
	out := Vanilla(db, []Query{CountOf("a")}, 0, 1, 1, rng)
	if len(out) != 1 || !out[0].Released {
		t.Fatalf("expected one released answer, got %v", out)
	}
	if math.Abs(out[0].Value-100) > 15 {
		t.Fatalf("released value %v implausibly far from 100", out[0].Value)
	}
}

func TestReducedStopsAfterT(t *testing.T) {
	rng := dp.NewRand(4)
	db := []string{"a", "a", "a", "a", "a"}
	queries := make([]Query, 10)
	for i := range queries {
		queries[i] = CountOf("a")
	}
	out := Reduced(db, queries, 0, 0.01, 3, rng)
	ones := 0
	for _, o := range out {
		ones += o
	}
	if ones != 3 {
		t.Fatalf("reduced SVT emitted %d positives, want 3", ones)
	}
}

func TestImprovedStopsAfterT(t *testing.T) {
	rng := dp.NewRand(5)
	db := []string{"a", "a", "a", "a", "a"}
	queries := make([]Query, 10)
	for i := range queries {
		queries[i] = CountOf("a")
	}
	out := Improved(db, queries, 0, 0.01, 4, rng)
	ones := 0
	for _, o := range out {
		ones += o
	}
	if ones != 4 {
		t.Fatalf("improved SVT emitted %d positives, want 4", ones)
	}
}

func TestBinaryEventProbIsProbability(t *testing.T) {
	vals := []float64{1, 1, 0}
	outs := []int{1, 0, 1}
	p := BinaryEventProb(vals, outs, 0.5, 2)
	if !(p > 0 && p < 1) {
		t.Fatalf("event probability %v outside (0,1)", p)
	}
}

func TestBinaryEventProbsSumToOne(t *testing.T) {
	// Over all 2^k output patterns, probabilities must sum to 1.
	vals := []float64{2, 0}
	total := 0.0
	for pattern := 0; pattern < 4; pattern++ {
		outs := []int{pattern & 1, (pattern >> 1) & 1}
		total += BinaryEventProb(vals, outs, 1, 1.5)
	}
	if math.Abs(total-1) > 1e-3 {
		t.Fatalf("pattern probabilities sum to %v", total)
	}
}

func TestBinaryEventProbMatchesMonteCarlo(t *testing.T) {
	db := []string{"a", "b"}
	queries := []Query{CountOf("a"), CountOf("b")}
	outs := []int{1, 0}
	theta, lambda := 1.0, 2.0
	vals := []float64{1, 1}
	analytic := BinaryEventProb(vals, outs, theta, lambda)
	rng := dp.NewRand(6)
	mc := EstimateBinaryEventProb(db, queries, outs, theta, lambda, 200000, rng)
	if math.Abs(analytic-mc) > 0.01 {
		t.Fatalf("analytic %v vs Monte Carlo %v", analytic, mc)
	}
}

func TestLemma51LossGrowsLinearly(t *testing.T) {
	// The binary SVT's loss on the counterexample must grow ~linearly in
	// k and exceed 2ε, invalidating Claim 1.
	lambda := 4.0 // the claimed λ = 2/ε for ε = 0.5
	eps := 0.5
	var prev float64
	for _, k := range []int{4, 8, 16, 32} {
		loss, bound := BinaryCounterexample{K: k, Lambda: lambda}.Loss()
		if loss <= prev {
			t.Fatalf("loss not increasing at k=%d: %v <= %v", k, loss, prev)
		}
		if k >= 16 && loss <= 2*eps {
			t.Fatalf("k=%d: loss %v does not exceed 2ε=%v", k, loss, 2*eps)
		}
		// The paper's bound says loss ≥ k/(2λ) asymptotically; allow 20%.
		if k >= 16 && loss < 0.8*bound {
			t.Fatalf("k=%d: loss %v below theory %v", k, loss, bound)
		}
		prev = loss
	}
}

func TestClaim2VanillaLossGrowsLinearly(t *testing.T) {
	lambda := 4.0
	for _, k := range []int{4, 8, 16} {
		loss, bound := VanillaCounterexample{K: k, Lambda: lambda}.Loss()
		// Appendix A derives loss = k/λ exactly for this instance.
		if math.Abs(loss-bound) > 0.05*bound {
			t.Fatalf("k=%d: vanilla loss %v, theory %v", k, loss, bound)
		}
	}
}

func TestImprovedSVTStaysWithinBudget(t *testing.T) {
	// Lemma A.1: the improved SVT at λ = 2/ε is ε-DP, so on the
	// distance-2 counterexample its loss must stay ≤ 2ε for every k.
	lambda := 4.0
	eps := 0.5
	for _, k := range []int{4, 8, 16, 32} {
		loss := ImprovedCounterexampleLoss(k, lambda)
		if loss > 2*eps+1e-6 {
			t.Fatalf("k=%d: improved SVT loss %v exceeds 2ε=%v", k, loss, 2*eps)
		}
	}
}

func TestImprovedBeatsBinaryOnCounterexample(t *testing.T) {
	lambda := 4.0
	for _, k := range []int{16, 32} {
		bLoss, _ := BinaryCounterexample{K: k, Lambda: lambda}.Loss()
		iLoss := ImprovedCounterexampleLoss(k, lambda)
		if iLoss >= bLoss {
			t.Fatalf("k=%d: improved loss %v not below binary %v", k, iLoss, bLoss)
		}
	}
}

func TestBuildTreeWithBinarySVTGrows(t *testing.T) {
	rng := dp.NewRand(20)
	pts := make([]geomPoint, 20000)
	for i := range pts {
		if i%5 == 0 {
			pts[i] = geomPoint{rng.Float64(), rng.Float64()}
		} else {
			x, y := 0.3+0.02*rng.NormFloat64(), 0.3+0.02*rng.NormFloat64()
			pts[i] = geomPoint{clamp01(x), clamp01(y)}
		}
	}
	data := mustSpatial(t, pts)
	tree := BuildTreeWithBinarySVT(data, geomFullBisect{Dim: 2}, 100, 4, 20, dp.NewRand(21))
	if tree.Size() < 5 {
		t.Fatalf("SVT tree did not grow: %d nodes", tree.Size())
	}
	if tree.Height() >= 20 {
		t.Fatalf("SVT tree hit the depth cap")
	}
}

func TestBuildTreeWithBinarySVTAdaptsToDensity(t *testing.T) {
	rng := dp.NewRand(22)
	pts := make([]geomPoint, 30000)
	for i := range pts {
		x, y := 0.25+0.01*rng.NormFloat64(), 0.75+0.01*rng.NormFloat64()
		pts[i] = geomPoint{clamp01(x), clamp01(y)}
	}
	data := mustSpatial(t, pts)
	tree := BuildTreeWithBinarySVT(data, geomFullBisect{Dim: 2}, 50, 2, 24, dp.NewRand(23))
	depthAt := func(x, y float64) int {
		n := tree.Root()
		for !n.IsLeaf() {
			for i := 0; i < n.NumChildren(); i++ {
				if c := n.Child(i); c.Region().Contains(geomPoint{x, y}) {
					n = c
					break
				}
			}
		}
		return n.Depth()
	}
	if depthAt(0.25, 0.75) <= depthAt(0.9, 0.1) {
		t.Fatal("SVT tree not deeper in the dense cluster")
	}
}
