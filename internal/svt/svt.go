// Package svt implements the four Sparse Vector Technique variants analyzed
// in Section 5 and Appendix A of the paper — binary (Algorithm 3), vanilla
// (Algorithm 4), reduced (Algorithm 5), and improved (Algorithm 6) — plus
// the Monte-Carlo machinery that demonstrates Lemma 5.1 and the refutation
// of Claim 2 empirically: the binary and vanilla SVTs leak privacy loss
// growing linearly in the number of queries, while the reduced and improved
// SVTs stay within their ε.
package svt

import (
	"math/rand/v2"

	"privtree/internal/dp"
)

// Query is a counting query over an abstract dataset; implementations must
// have sensitivity 1.
type Query func(db []string) float64

// CountOf returns a query counting occurrences of item in the dataset.
func CountOf(item string) Query {
	return func(db []string) float64 {
		n := 0.0
		for _, x := range db {
			if x == item {
				n++
			}
		}
		return n
	}
}

// Binary runs Algorithm 3 (the binary SVT of Lee & Clifton): one noisy
// threshold θ̂ = θ + Lap(λ), then for every query an independent noisy
// answer compared against θ̂, outputting 1/0. The paper PROVES this is NOT
// ε-DP at the claimed λ = 2/ε (Lemma 5.1): it requires λ = Ω(k/ε).
func Binary(db []string, queries []Query, theta, lambda float64, rng *rand.Rand) []int {
	thetaHat := theta + dp.LapNoise(rng, lambda)
	out := make([]int, len(queries))
	for i, q := range queries {
		if q(db)+dp.LapNoise(rng, lambda) > thetaHat {
			out[i] = 1
		}
	}
	return out
}

// VanillaResult is one output slot of the vanilla SVT: either a released
// noisy value or the placeholder ⊥.
type VanillaResult struct {
	Released bool
	Value    float64
}

// Vanilla runs Algorithm 4 (Hardt's vanilla SVT): noisy answers above the
// noisy threshold are released directly (with noise scale t·λ), at most t
// of them; the rest output ⊥. The paper refutes the claimed ε-DP at
// λ = 2/ε (Claim 2): the true requirement is Ω(t·k/ε).
func Vanilla(db []string, queries []Query, theta, lambda float64, t int, rng *rand.Rand) []VanillaResult {
	thetaHat := theta + dp.LapNoise(rng, lambda)
	out := make([]VanillaResult, 0, len(queries))
	cnt := 0
	for _, q := range queries {
		noisy := q(db) + dp.LapNoise(rng, float64(t)*lambda)
		if noisy > thetaHat {
			out = append(out, VanillaResult{Released: true, Value: noisy})
			cnt++
			if cnt >= t {
				return out
			}
			continue
		}
		out = append(out, VanillaResult{})
	}
	return out
}

// Reduced runs Algorithm 5 (Dwork & Roth's SVT): binary outputs, noise
// scale t·λ on both threshold and answers, threshold re-drawn after every
// positive, at most t positives. This one IS ε-DP at λ = 2/ε.
func Reduced(db []string, queries []Query, theta, lambda float64, t int, rng *rand.Rand) []int {
	scale := float64(t) * lambda
	thetaHat := theta + dp.LapNoise(rng, scale)
	out := make([]int, 0, len(queries))
	cnt := 0
	for _, q := range queries {
		if q(db)+dp.LapNoise(rng, scale) > thetaHat {
			out = append(out, 1)
			thetaHat = theta + dp.LapNoise(rng, scale)
			cnt++
			if cnt >= t {
				return out
			}
			continue
		}
		out = append(out, 0)
	}
	return out
}

// Improved runs Algorithm 6, the paper's improvement over the reduced SVT:
// a single noisy threshold at scale λ (not t·λ, and never re-drawn), noisy
// answers at scale t·λ. Lemma A.1 proves ε-DP at λ = 2/ε, with strictly
// more accurate threshold comparisons than Reduced.
func Improved(db []string, queries []Query, theta, lambda float64, t int, rng *rand.Rand) []int {
	thetaHat := theta + dp.LapNoise(rng, lambda)
	answerScale := float64(t) * lambda
	out := make([]int, 0, len(queries))
	cnt := 0
	for _, q := range queries {
		if q(db)+dp.LapNoise(rng, answerScale) > thetaHat {
			out = append(out, 1)
			cnt++
			if cnt >= t {
				return out
			}
			continue
		}
		out = append(out, 0)
	}
	return out
}
