package svt

import (
	"math/rand/v2"

	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// BuildTreeWithBinarySVT constructs a spatial decomposition by feeding the
// node-count queries of a growing quadtree into the binary SVT, exactly
// the hypothetical construction of Section 5: "we invoke the binary SVT to
// inspect each query in Q one by one; if the binary SVT outputs 1 for a
// query c(v), then we split the node v".
//
// If Claim 1 held, this would be ε-DP at λ = 2/ε — strictly better than
// PrivTree's (2β−1)/(β−1)/ε. Lemma 5.1 proves it is NOT differentially
// private at that scale, so this function exists for demonstration and
// comparison only; it must never be used to release real data. The
// returned tree carries no counts.
func BuildTreeWithBinarySVT(data *dataset.Spatial, split geom.Splitter, theta, lambda float64, maxDepth int, rng *rand.Rand) *core.Tree {
	if maxDepth <= 0 {
		maxDepth = core.DefaultMaxDepth
	}
	thetaHat := theta + dp.LapNoise(rng, lambda)

	b := core.NewBuilder(split.Fanout(), 64)
	b.AddRoot(data.Domain)
	type item struct {
		idx  int32
		view dataset.View
	}
	queue := []item{{0, *data.NewView()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		n := b.Node(cur.idx)
		if int(n.Depth) >= maxDepth-1 {
			continue
		}
		noisy := float64(cur.view.Len()) + dp.LapNoise(rng, lambda)
		if noisy <= thetaHat {
			continue
		}
		regions := split.Split(n.Region, int(n.Depth))
		views := cur.view.PartitionInto(regions, make([]dataset.View, len(regions)))
		first := b.AddChildren(cur.idx, regions)
		for i := range regions {
			queue = append(queue, item{first + int32(i), views[i]})
		}
	}
	return b.Build(false)
}
