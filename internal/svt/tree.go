package svt

import (
	"math"
	"math/rand/v2"

	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// BuildTreeWithBinarySVT constructs a spatial decomposition by feeding the
// node-count queries of a growing quadtree into the binary SVT, exactly
// the hypothetical construction of Section 5: "we invoke the binary SVT to
// inspect each query in Q one by one; if the binary SVT outputs 1 for a
// query c(v), then we split the node v".
//
// If Claim 1 held, this would be ε-DP at λ = 2/ε — strictly better than
// PrivTree's (2β−1)/(β−1)/ε. Lemma 5.1 proves it is NOT differentially
// private at that scale, so this function exists for demonstration and
// comparison only; it must never be used to release real data. The
// returned tree carries no counts.
func BuildTreeWithBinarySVT(data *dataset.Spatial, split geom.Splitter, theta, lambda float64, maxDepth int, rng *rand.Rand) *core.Tree {
	if maxDepth <= 0 {
		maxDepth = core.DefaultMaxDepth
	}
	thetaHat := theta + dp.LapNoise(rng, lambda)

	root := &core.Node{Region: data.Domain.Clone(), Depth: 0, Count: math.NaN()}
	type item struct {
		node *core.Node
		view *dataset.View
	}
	queue := []item{{root, data.NewView()}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.node.Depth >= maxDepth-1 {
			continue
		}
		noisy := float64(cur.view.Len()) + dp.LapNoise(rng, lambda)
		if noisy <= thetaHat {
			continue
		}
		regions := split.Split(cur.node.Region, cur.node.Depth)
		views := cur.view.Partition(regions)
		cur.node.Children = make([]*core.Node, len(regions))
		for i, r := range regions {
			child := &core.Node{Region: r, Depth: cur.node.Depth + 1, Count: math.NaN()}
			cur.node.Children[i] = child
			queue = append(queue, item{child, views[i]})
		}
	}
	return &core.Tree{Root: root, Fanout: split.Fanout()}
}
