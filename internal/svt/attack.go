package svt

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dp"
)

// This file quantifies the privacy of the SVT variants on the paper's
// counterexamples. Probabilities of output events are computed by numeric
// integration over the noisy threshold (Simpson's rule in log space), which
// reproduces the integrals in the proofs of Lemma 5.1 and Appendix A
// without Monte-Carlo error; a sampling-based estimator cross-checks them.

// integrationHalfWidth bounds the θ̂ integration range in units of the
// threshold's noise scale; 45 scales put the truncated tail below 1e-19.
const integrationHalfWidth = 45.0

// simpson integrates f over [lo, hi] with n panels (n even).
func simpson(f func(float64) float64, lo, hi float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (hi - lo) / float64(n)
	sum := f(lo) + f(hi)
	for i := 1; i < n; i++ {
		x := lo + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// BinaryEventProb returns Pr[E] for the binary SVT (Algorithm 3) on a
// dataset where query i has exact answer vals[i], with desired outputs
// outs[i] ∈ {0,1}: Pr = ∫ f_θ̂(x) Π Pr[outᵢ | x] dx.
func BinaryEventProb(vals []float64, outs []int, theta, lambda float64) float64 {
	noise := dp.NewLaplace(0, lambda)
	thr := dp.NewLaplace(theta, lambda)
	integrand := func(x float64) float64 {
		logp := thr.LogPDF(x)
		for i, v := range vals {
			// Output 1 ⇔ v + Lap(λ) > x ⇔ Lap > x − v.
			var p float64
			if outs[i] == 1 {
				p = noise.Tail(x - v)
			} else {
				p = noise.CDF(x - v)
			}
			if p <= 0 {
				return 0
			}
			logp += math.Log(p)
		}
		return math.Exp(logp)
	}
	lo := theta - integrationHalfWidth*lambda
	hi := theta + integrationHalfWidth*lambda
	return simpson(integrand, lo, hi, 40000)
}

// BinaryCounterexample is the Lemma 5.1 instance: D1={a,b}, D3={b,b}
// (connected through D2={a,b,b}); Q = k/2 copies of "count a" then k/2
// copies of "count b"; θ=1; event E = (1,…,1,0,…,0).
type BinaryCounterexample struct {
	K      int
	Lambda float64
}

// Loss returns the realized privacy loss ln(Pr[D1→E]/Pr[D3→E]) together
// with the paper's lower bound k/(2λ). Since D1 and D3 are at dataset
// distance 2, an ε-DP algorithm must keep the loss ≤ 2ε; the binary SVT at
// the claimed λ=2/ε exceeds that for any k > 8.
func (c BinaryCounterexample) Loss() (loss, bound float64) {
	if c.K%2 != 0 {
		panic("svt: BinaryCounterexample needs even k")
	}
	half := c.K / 2
	vals1 := make([]float64, c.K) // on D1: qa=1 (k/2 times), qb=1
	vals3 := make([]float64, c.K) // on D3: qa=0, qb=2
	outs := make([]int, c.K)
	for i := 0; i < c.K; i++ {
		if i < half {
			vals1[i] = 1 // count of a in {a,b}
			vals3[i] = 0 // count of a in {b,b}
			outs[i] = 1
		} else {
			vals1[i] = 1 // count of b in {a,b}
			vals3[i] = 2 // count of b in {b,b}
			outs[i] = 0
		}
	}
	const theta = 1.0
	p1 := BinaryEventProb(vals1, outs, theta, c.Lambda)
	p3 := BinaryEventProb(vals3, outs, theta, c.Lambda)
	return math.Log(p1 / p3), float64(c.K) / (2 * c.Lambda)
}

// VanillaEventProb returns Pr[E] for the vanilla SVT (Algorithm 4) with
// t=1 on the event "⊥ for every query except the last, which releases the
// exact value rel": Pr = ∫_{-∞}^{rel} f_θ̂(x)·Π CDF(x−vᵢ)·pdf(rel−v_last) dx.
// The upper limit rel is the subtlety previous work overlooked: the
// released value must exceed the noisy threshold.
func VanillaEventProb(vals []float64, rel float64, theta, lambda float64) float64 {
	noise := dp.NewLaplace(0, lambda) // t=1 ⇒ answers also use scale λ
	thr := dp.NewLaplace(theta, lambda)
	last := len(vals) - 1
	logDensityAtRel := noise.LogPDF(rel - vals[last])
	integrand := func(x float64) float64 {
		logp := thr.LogPDF(x) + logDensityAtRel
		for _, v := range vals[:last] {
			p := noise.CDF(x - v)
			if p <= 0 {
				return 0
			}
			logp += math.Log(p)
		}
		return math.Exp(logp)
	}
	lo := theta - integrationHalfWidth*lambda
	return simpson(integrand, lo, rel, 40000)
}

// VanillaCounterexample is Appendix A's refutation of Claim 2:
// D1={a,b}, D3={a,a} (through D2={a,a,b}); Q = k−1 copies of "count a"
// then one "count b"; θ=0, t=1; event E = (⊥,…,⊥, release 1).
type VanillaCounterexample struct {
	K      int
	Lambda float64
}

// Loss returns ln(Pr[D1→E]/Pr[D3→E]) and the paper's value k/λ. An ε-DP
// algorithm must keep it ≤ 2ε.
func (c VanillaCounterexample) Loss() (loss, bound float64) {
	vals1 := make([]float64, c.K)
	vals3 := make([]float64, c.K)
	for i := 0; i < c.K-1; i++ {
		vals1[i] = 1 // count of a in {a,b}
		vals3[i] = 2 // count of a in {a,a}
	}
	vals1[c.K-1] = 1 // count of b in {a,b}
	vals3[c.K-1] = 0 // count of b in {a,a}
	const theta, rel = 0.0, 1.0
	p1 := VanillaEventProb(vals1, rel, theta, c.Lambda)
	p3 := VanillaEventProb(vals3, rel, theta, c.Lambda)
	return math.Log(p1 / p3), float64(c.K) / c.Lambda
}

// ImprovedEventProb returns Pr[E] for the improved SVT (Algorithm 6):
// threshold noise scale λ, answer noise scale t·λ, binary outputs.
func ImprovedEventProb(vals []float64, outs []int, theta, lambda float64, t int) float64 {
	noise := dp.NewLaplace(0, float64(t)*lambda)
	thr := dp.NewLaplace(theta, lambda)
	integrand := func(x float64) float64 {
		logp := thr.LogPDF(x)
		for i, v := range vals {
			var p float64
			if outs[i] == 1 {
				p = noise.Tail(x - v)
			} else {
				p = noise.CDF(x - v)
			}
			if p <= 0 {
				return 0
			}
			logp += math.Log(p)
		}
		return math.Exp(logp)
	}
	lo := theta - integrationHalfWidth*lambda*float64(t)
	hi := theta + integrationHalfWidth*lambda*float64(t)
	return simpson(integrand, lo, hi, 40000)
}

// ImprovedCounterexampleLoss evaluates the improved SVT on the SAME
// adversarial instance as BinaryCounterexample, with t = k/2+1 so the
// event's k/2 positive outputs are all emitted before the cutoff. The
// answer noise then carries scale t·λ, and Lemma A.1 guarantees the loss
// stays ≤ 2·(2/λ) for the distance-2 pair regardless of k — the contrast
// that motivates Algorithm 6 over the (broken) binary SVT.
func ImprovedCounterexampleLoss(k int, lambda float64) float64 {
	half := k / 2
	vals1 := make([]float64, k)
	vals3 := make([]float64, k)
	outs := make([]int, k)
	for i := 0; i < k; i++ {
		if i < half {
			vals1[i], vals3[i], outs[i] = 1, 0, 1
		} else {
			vals1[i], vals3[i], outs[i] = 1, 2, 0
		}
	}
	const theta = 1.0
	t := half + 1
	p1 := ImprovedEventProb(vals1, outs, theta, lambda, t)
	p3 := ImprovedEventProb(vals3, outs, theta, lambda, t)
	return math.Log(p1 / p3)
}

// EstimateBinaryEventProb is the Monte-Carlo cross-check of
// BinaryEventProb: it runs Algorithm 3 trials times and counts how often
// the target output sequence occurs.
func EstimateBinaryEventProb(db []string, queries []Query, outs []int, theta, lambda float64, trials int, rng *rand.Rand) float64 {
	hits := 0
	for trial := 0; trial < trials; trial++ {
		got := Binary(db, queries, theta, lambda, rng)
		match := true
		for i := range outs {
			if got[i] != outs[i] {
				match = false
				break
			}
		}
		if match {
			hits++
		}
	}
	return float64(hits) / float64(trials)
}
