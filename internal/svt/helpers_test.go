package svt

import (
	"math"
	"testing"

	"privtree/internal/dataset"
	"privtree/internal/geom"
)

// Aliases keep the SVT test bodies compact.
type geomPoint = geom.Point
type geomFullBisect = geom.FullBisect

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return math.Nextafter(1, 0)
	}
	return x
}

func mustSpatial(t *testing.T, pts []geom.Point) *dataset.Spatial {
	t.Helper()
	ds, err := dataset.NewSpatial(geom.UnitCube(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}
