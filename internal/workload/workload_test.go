package workload

import (
	"math"
	"math/rand/v2"
	"testing"

	"privtree/internal/dataset"
	"privtree/internal/geom"
)

func TestSizeClassBounds(t *testing.T) {
	cases := []struct {
		c      SizeClass
		lo, hi float64
	}{
		{Small, 0.0001, 0.001},
		{Medium, 0.001, 0.01},
		{Large, 0.01, 0.1},
	}
	for _, tc := range cases {
		lo, hi := tc.c.Bounds()
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("%v bounds = [%v, %v)", tc.c, lo, hi)
		}
	}
}

func TestSizeClassString(t *testing.T) {
	if Small.String() != "small" || Medium.String() != "medium" || Large.String() != "large" {
		t.Fatal("size class names wrong")
	}
	if SizeClass(99).String() != "unknown" {
		t.Fatal("unknown class name wrong")
	}
}

func TestQueriesVolumeInBand(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	dom := geom.UnitCube(2)
	for _, class := range []SizeClass{Small, Medium, Large} {
		lo, hi := class.Bounds()
		for _, q := range Queries(dom, class, 200, rng) {
			frac := q.Volume() / dom.Volume()
			if frac < lo*0.99 || frac > hi*1.01 {
				t.Fatalf("%v query volume fraction %v outside [%v, %v)", class, frac, lo, hi)
			}
			if !dom.ContainsRect(q) {
				t.Fatalf("query %v escapes domain", q)
			}
		}
	}
}

func TestQueries4D(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	dom := geom.UnitCube(4)
	for _, q := range Queries(dom, Large, 100, rng) {
		frac := q.Volume() / dom.Volume()
		if frac < 0.0099 || frac > 0.101 {
			t.Fatalf("4-D large query fraction %v", frac)
		}
	}
}

func TestQueriesNonDomainUnitCube(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	dom := geom.NewRect(geom.Point{-10, 5}, geom.Point{10, 25})
	for _, q := range Queries(dom, Medium, 100, rng) {
		if !dom.ContainsRect(q) {
			t.Fatalf("query %v escapes shifted domain", q)
		}
		frac := q.Volume() / dom.Volume()
		if frac < 0.00099 || frac > 0.0101 {
			t.Fatalf("shifted-domain query fraction %v", frac)
		}
	}
}

func TestRelativeErrorSmoothing(t *testing.T) {
	// RE = |got−exact| / max(exact, Δ).
	if got := RelativeError(110, 100, 50); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("RE = %v, want 0.1", got)
	}
	// Small exact count: denominator is the smoothing factor.
	if got := RelativeError(10, 0, 50); math.Abs(got-0.2) > 1e-12 {
		t.Fatalf("smoothed RE = %v, want 0.2", got)
	}
}

type constMethod float64

func (c constMethod) RangeCount(q geom.Rect) float64 { return float64(c) }

func TestEvaluatorAvgRelativeError(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	pts := make([]geom.Point, 10000)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	ds, err := dataset.NewSpatial(geom.UnitCube(2), pts)
	if err != nil {
		t.Fatal(err)
	}
	idx := dataset.NewGridIndex(ds, 16)
	queries := Queries(ds.Domain, Large, 50, rng)
	ev := NewEvaluator(idx, queries)
	if ev.Delta != 10 {
		t.Fatalf("smoothing factor = %v, want 0.1%% of 10000", ev.Delta)
	}
	// The exact oracle itself must score zero error.
	if got := ev.AvgRelativeError(exactMethod{idx}); got != 0 {
		t.Fatalf("oracle scored %v", got)
	}
	// A zero predictor scores 1 (error equals the count, smoothed).
	if got := ev.AvgRelativeError(constMethod(0)); got < 0.9 {
		t.Fatalf("zero predictor scored %v, want ≈1", got)
	}
}

type exactMethod struct{ idx *dataset.GridIndex }

func (m exactMethod) RangeCount(q geom.Rect) float64 { return float64(m.idx.RangeCount(q)) }

func TestEvaluatorExactPrecomputed(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	pts := make([]geom.Point, 1000)
	for i := range pts {
		pts[i] = geom.Point{rng.Float64(), rng.Float64()}
	}
	ds, _ := dataset.NewSpatial(geom.UnitCube(2), pts)
	idx := dataset.NewGridIndex(ds, 8)
	queries := Queries(ds.Domain, Medium, 20, rng)
	ev := NewEvaluator(idx, queries)
	for i, q := range queries {
		if ev.Exact(i) != float64(idx.RangeCount(q)) {
			t.Fatalf("precomputed exact mismatch at %d", i)
		}
	}
}

func TestEmptyQuerySetScoresZero(t *testing.T) {
	ds, _ := dataset.NewSpatial(geom.UnitCube(2), nil)
	idx := dataset.NewGridIndex(ds, 4)
	ev := NewEvaluator(idx, nil)
	if got := ev.AvgRelativeError(constMethod(5)); got != 0 {
		t.Fatalf("empty query set scored %v", got)
	}
}
