// Package workload generates the range-count query workloads of Section 6.1
// and computes the paper's accuracy metrics: relative error with smoothing
// Δ = 0.1%·n for range counts, precision@k for frequent-string mining.
package workload

import (
	"math"
	"math/rand/v2"

	"privtree/internal/dataset"
	"privtree/internal/geom"
)

// SizeClass is one of the paper's three query-volume bands.
type SizeClass int

// The query sets of Section 6.1: each query's region covers the stated
// fraction band of the data domain's volume.
const (
	Small  SizeClass = iota // [0.01%, 0.1%)
	Medium                  // [0.1%, 1%)
	Large                   // [1%, 10%)
)

// String names the size class.
func (s SizeClass) String() string {
	switch s {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	}
	return "unknown"
}

// Bounds returns the volume-fraction band [lo, hi) of the class.
func (s SizeClass) Bounds() (lo, hi float64) {
	switch s {
	case Small:
		return 0.0001, 0.001
	case Medium:
		return 0.001, 0.01
	default:
		return 0.01, 0.1
	}
}

// Queries generates count random range queries over domain whose volumes
// fall in the class's band. Each query is an axis-aligned box: the volume
// fraction is drawn log-uniformly inside the band, split across axes with
// random aspect ratios, and the box is placed uniformly (clamped inside the
// domain).
func Queries(domain geom.Rect, class SizeClass, count int, rng *rand.Rand) []geom.Rect {
	lo, hi := class.Bounds()
	d := domain.Dims()
	out := make([]geom.Rect, count)
	for qi := range out {
		// Log-uniform target volume fraction.
		frac := math.Exp(math.Log(lo) + rng.Float64()*(math.Log(hi)-math.Log(lo)))
		// Split log(frac) across axes with random proportions.
		props := make([]float64, d)
		sum := 0.0
		for i := range props {
			props[i] = 0.25 + rng.Float64() // bounded away from 0: no degenerate slivers
			sum += props[i]
		}
		qlo := make(geom.Point, d)
		qhi := make(geom.Point, d)
		for i := 0; i < d; i++ {
			side := domain.Side(i) * math.Pow(frac, props[i]/sum)
			maxStart := domain.Side(i) - side
			start := domain.Lo[i]
			if maxStart > 0 {
				start += rng.Float64() * maxStart
			}
			qlo[i] = start
			qhi[i] = start + side
		}
		out[qi] = geom.Rect{Lo: qlo, Hi: qhi}
	}
	return out
}

// RelativeError computes the paper's metric for one query:
//
//	RE = |q̂(D) − q(D)| / max{q(D), Δ}
//
// where Δ is the smoothing factor (0.1% of the dataset cardinality).
func RelativeError(got, exact, delta float64) float64 {
	den := exact
	if den < delta {
		den = delta
	}
	return math.Abs(got-exact) / den
}

// Evaluator scores a private synopsis over a fixed query set using a
// pre-built exact-count oracle.
type Evaluator struct {
	Index   *dataset.GridIndex
	Queries []geom.Rect
	Delta   float64 // smoothing factor, 0.1% of n
	exact   []float64
}

// NewEvaluator precomputes exact answers for the query set.
func NewEvaluator(idx *dataset.GridIndex, queries []geom.Rect) *Evaluator {
	e := &Evaluator{
		Index:   idx,
		Queries: queries,
		Delta:   0.001 * float64(idx.N()),
		exact:   make([]float64, len(queries)),
	}
	for i, q := range queries {
		e.exact[i] = float64(idx.RangeCount(q))
	}
	return e
}

// Exact returns the precomputed exact answer for query i.
func (e *Evaluator) Exact(i int) float64 { return e.exact[i] }

// Method is any private synopsis that answers range-count queries.
type Method interface {
	RangeCount(q geom.Rect) float64
}

// AvgRelativeError runs every query through m and returns the mean relative
// error — one point of Figure 5.
func (e *Evaluator) AvgRelativeError(m Method) float64 {
	if len(e.Queries) == 0 {
		return 0
	}
	total := 0.0
	for i, q := range e.Queries {
		total += RelativeError(m.RangeCount(q), e.exact[i], e.Delta)
	}
	return total / float64(len(e.Queries))
}
