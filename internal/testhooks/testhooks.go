// Package testhooks carries cross-package fault-injection points used by
// the test suites to hold privacy-critical operations open at precise
// moments (e.g. freezing a release build so its context can be cancelled
// mid-flight, or so a server admission gate can be saturated
// deterministically). Every hook is nil in production; only tests install
// one, and they must clear it before returning.
package testhooks

import "sync/atomic"

// BuildStart, when non-nil, is invoked (with the release fingerprint)
// after a release's budget debit is durable and before the mechanism
// runs. The hook runs inside the build goroutine, so a blocking hook
// holds the build open without blocking cancellation.
var BuildStart atomic.Pointer[func(fp string)]
