package em

import (
	"testing"

	"privtree/internal/dp"
	"privtree/internal/sequence"
	"privtree/internal/synth"
)

func mk(xs ...int) sequence.Seq {
	syms := make([]sequence.Symbol, len(xs))
	for i, x := range xs {
		syms[i] = sequence.Symbol(x)
	}
	return sequence.Seq{Syms: syms}
}

func TestTopKReturnsKStrings(t *testing.T) {
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(3), Seqs: []sequence.Seq{
		mk(0, 1, 2), mk(0, 1), mk(0),
	}}
	out := TopK(d, 5, 4, 1.0, dp.NewRand(1))
	if len(out) != 5 {
		t.Fatalf("returned %d strings", len(out))
	}
	seen := map[string]bool{}
	for _, sc := range out {
		key := sequence.Key(sc.Syms)
		if seen[key] {
			t.Fatalf("duplicate selection %v", sc.Syms)
		}
		seen[key] = true
	}
}

func TestTopKFindsDominantStringAtHighBudget(t *testing.T) {
	// One symbol massively dominates; with a huge budget the first
	// selection must be it.
	seqs := make([]sequence.Seq, 2000)
	for i := range seqs {
		seqs[i] = mk(2, 2, 2, 2)
	}
	seqs[0] = mk(0, 1)
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(3), Seqs: seqs}
	out := TopK(d, 1, 5, 1000, dp.NewRand(2))
	if len(out) != 1 || len(out[0].Syms) != 1 || out[0].Syms[0] != 2 {
		t.Fatalf("first selection = %+v, want symbol 2", out)
	}
}

func TestTopKExtendsSelections(t *testing.T) {
	// After selecting "2", its extensions (e.g. "22") become candidates
	// and should be selected next on this data.
	seqs := make([]sequence.Seq, 2000)
	for i := range seqs {
		seqs[i] = mk(2, 2, 2, 2)
	}
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(3), Seqs: seqs}
	out := TopK(d, 3, 5, 1000, dp.NewRand(3))
	if len(out) != 3 {
		t.Fatalf("returned %d", len(out))
	}
	// All three should be runs of 2s: "2", "22", "222".
	for i, sc := range out {
		if len(sc.Syms) != i+1 {
			t.Fatalf("selection %d has length %d, want %d (%v)", i, len(sc.Syms), i+1, out)
		}
		for _, x := range sc.Syms {
			if x != 2 {
				t.Fatalf("selection %d contains %v", i, sc.Syms)
			}
		}
	}
}

func TestTopKPrecisionDegradesWithK(t *testing.T) {
	// The paper observes EM's accuracy drops as k grows (budget ε/k per
	// round). Check the trend on structured data at moderate ε.
	data := synth.MoocLike(10000, dp.NewRand(4))
	trunc, _ := data.Truncate(50)
	exact50 := sequence.TopK(data, 50, 4)
	exact200 := sequence.TopK(data, 200, 4)
	avg := func(k int, exact []sequence.StringCount) float64 {
		total := 0.0
		const reps = 3
		for r := 0; r < reps; r++ {
			out := TopK(trunc, k, 50, 0.8, dp.NewRand(uint64(5+r)))
			total += sequence.Precision(exact, out, k)
		}
		return total / reps
	}
	p50 := avg(50, exact50)
	p200 := avg(200, exact200)
	if p200 >= p50 {
		t.Fatalf("precision did not degrade with k: p50=%v p200=%v", p50, p200)
	}
}

func TestCountStringMatchesReference(t *testing.T) {
	d := &sequence.Dataset{Alphabet: sequence.NewAlphabet(2), Seqs: []sequence.Seq{
		mk(0, 0, 0), mk(0, 0),
	}}
	if got := countString(d, []sequence.Symbol{0, 0}); got != 3 {
		t.Fatalf("count(00) = %d, want 3 (overlapping occurrences)", got)
	}
}
