// Package em implements the exponential-mechanism baseline for top-k
// frequent string mining (Section 6.2): starting from the |I| length-1
// strings, it invokes the exponential mechanism k times at budget ε/k
// each, selecting the most frequent remaining candidate and replacing it
// with its |I| one-symbol extensions.
package em

import (
	"math/rand/v2"

	"privtree/internal/dp"
	"privtree/internal/sequence"
)

// TopK runs the baseline. Quality of a candidate is its exact occurrence
// count; one sequence of effective length ≤ l⊤ changes any string's count
// by at most l⊤, so the selection sensitivity is l⊤.
func TopK(data *sequence.Dataset, k, lTop int, eps float64, rng *rand.Rand) []sequence.StringCount {
	if lTop < 1 {
		lTop = data.MaxLen() + 1
	}
	type cand struct {
		syms []sequence.Symbol
	}
	var pool []cand
	for x := 0; x < data.Alphabet.Size; x++ {
		pool = append(pool, cand{[]sequence.Symbol{sequence.Symbol(x)}})
	}
	mech := dp.ExponentialMechanism{Epsilon: eps / float64(k), Sensitivity: float64(lTop)}

	// One pass precomputes every substring count up to precountLen; only
	// the rare candidates that grow longer fall back to a direct scan.
	const precountLen = 6
	pre := sequence.CountOccurrences(data, precountLen)
	counts := make(map[string]float64)
	countOf := func(syms []sequence.Symbol) float64 {
		key := sequence.Key(syms)
		if len(syms) <= precountLen {
			return float64(pre[key])
		}
		if c, ok := counts[key]; ok {
			return c
		}
		c := float64(countString(data, syms))
		counts[key] = c
		return c
	}

	out := make([]sequence.StringCount, 0, k)
	for round := 0; round < k && len(pool) > 0; round++ {
		scores := make([]float64, len(pool))
		for i, c := range pool {
			scores[i] = countOf(c.syms)
		}
		pick := mech.Select(rng, scores)
		chosen := pool[pick]
		out = append(out, sequence.StringCount{Syms: chosen.syms, Count: countOf(chosen.syms)})
		// Replace the chosen candidate with its extensions.
		pool = append(pool[:pick], pool[pick+1:]...)
		for x := 0; x < data.Alphabet.Size; x++ {
			ext := append(append([]sequence.Symbol(nil), chosen.syms...), sequence.Symbol(x))
			pool = append(pool, cand{ext})
		}
	}
	return out
}

// countString counts occurrences of syms as a substring across the data.
func countString(data *sequence.Dataset, syms []sequence.Symbol) int {
	total := 0
	for _, s := range data.Seqs {
		n := len(s.Syms)
		for i := 0; i+len(syms) <= n; i++ {
			match := true
			for j, x := range syms {
				if s.Syms[i+j] != x {
					match = false
					break
				}
			}
			if match {
				total++
			}
		}
	}
	return total
}
