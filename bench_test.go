package privtree

// This file holds one benchmark per table/figure of the paper, per the
// experiment index in DESIGN.md §3. Benchmarks run the corresponding
// experiment at a reduced scale so `go test -bench=.` completes in
// minutes; cmd/privtree-bench regenerates the full-size artifacts.

import (
	"io"
	"testing"

	"privtree/internal/experiments"
)

// benchConfig is the reduced-scale configuration shared by the figure
// benches.
func benchConfig() experiments.Config {
	return experiments.Config{
		Out:      io.Discard,
		Scale:    0.02,
		Reps:     1,
		Queries:  60,
		Epsilons: []float64{0.1, 1.6},
	}
}

func BenchmarkFig2RhoCurve(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig2(cfg)
	}
}

func BenchmarkTable2Datasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Table2(cfg)
	}
}

func BenchmarkFig5RangeQueries(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig5(cfg)
	}
}

func BenchmarkTable3SequenceDatasets(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Table3(cfg)
	}
}

func BenchmarkFig6TopK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig6(cfg)
	}
}

func BenchmarkFig7LengthDist(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig7(cfg)
	}
}

func BenchmarkSVTViolation(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.SVTViolation(cfg, 0.5)
	}
}

func BenchmarkTable4Runtime(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Table4Spatial(cfg)
		experiments.Table4Sequence(cfg)
	}
}

func BenchmarkFig8Fanout(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig8(cfg)
	}
}

func BenchmarkFig9UGScale(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig9(cfg)
	}
}

func BenchmarkFig10AGScale(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig10(cfg)
	}
}

func BenchmarkFig11HierarchyHeight(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig11(cfg)
	}
}

func BenchmarkFig12NGramHeight(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Fig12(cfg)
	}
}

func BenchmarkLemma32TreeSize(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		experiments.Lemma32Check(cfg, "gowalla", 1.0)
	}
}

// Micro-benchmarks of the core operations, for performance tracking.

func BenchmarkBuildSpatial100k(b *testing.B) {
	pts := makeClusteredPoints(100_000)
	dom := UnitCube(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSpatial(dom, pts, 1.0, SpatialOptions{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSpatial1M measures the build at production scale, serial
// vs. parallel. Because noise comes from per-node splittable streams, both
// variants release the identical tree; only wall-clock differs.
func BenchmarkBuildSpatial1M(b *testing.B) {
	pts := makeClusteredPoints(1_000_000)
	dom := UnitCube(2)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildSpatial(dom, pts, 1.0, SpatialOptions{Seed: uint64(i + 1), Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkRangeCount(b *testing.B) {
	pts := makeClusteredPoints(100_000)
	dom := UnitCube(2)
	tree, err := BuildSpatial(dom, pts, 1.0, SpatialOptions{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	q := NewRect(Point{0.2, 0.2}, Point{0.6, 0.6})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree.RangeCount(q)
	}
}

func BenchmarkBuildSequenceModel(b *testing.B) {
	seqs := makeClickstreams(20_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildSequenceModel(6, seqs, 1.0, SequenceOptions{MaxLength: 20, Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildSequenceModelParallel measures the PST build serial vs.
// parallel. Because noise comes from context-path-keyed streams, both
// variants release the identical model; only wall-clock differs.
func BenchmarkBuildSequenceModelParallel(b *testing.B) {
	seqs := makeClickstreams(100_000)
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"serial", 1},
		{"parallel", 0}, // 0 = GOMAXPROCS
	} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := BuildSequenceModel(6, seqs, 1.0, SequenceOptions{MaxLength: 20, Seed: uint64(i + 1), Workers: bc.workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEstimateFrequency(b *testing.B) {
	model, err := BuildSequenceModel(6, makeClickstreams(20_000), 1.0, SequenceOptions{MaxLength: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	queries := []Sequence{{0}, {2, 3}, {5, 0, 1}, {1, 2, 3, 4}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.EstimateFrequency(queries[i%len(queries)])
	}
}

func BenchmarkSequenceTopK(b *testing.B) {
	model, err := BuildSequenceModel(6, makeClickstreams(20_000), 1.0, SequenceOptions{MaxLength: 20, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		model.TopK(20, 5)
	}
}
