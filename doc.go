// Package privtree implements PrivTree, the differentially private
// hierarchical-decomposition algorithm of Zhang, Xiao & Xie (SIGMOD 2016),
// together with its two flagship applications and the baselines the paper
// evaluates against.
//
// # What PrivTree is
//
// Given a dataset D over a domain Ω, PrivTree recursively splits Ω into a
// decomposition tree (a quadtree for 2-D points) and releases the tree —
// optionally with noisy counts — under ε-differential privacy. Unlike the
// classical private-quadtree recipe, it needs NO pre-set limit on the
// recursion depth: each node's count is biased downward by depth·δ and
// clamped at θ−δ before the Laplace noise is added, which telescopes the
// privacy cost of the whole root-to-leaf decision chain into a constant.
// The noise scale is λ = (2β−1)/(β−1)·1/ε for fanout β, independent of how
// deep the tree grows.
//
// # Entry points
//
//   - BuildSpatial: private spatial decomposition with noisy counts,
//     answering range-count queries (Section 3 of the paper).
//   - BuildSequenceModel: private prediction suffix tree over sequence
//     data, for frequent-string mining and synthetic sequence generation
//     (Section 4).
//
// Baseline constructors (UG, AG, Hierarchy, Privelet*, DAWA, SimpleTree)
// and the SVT analysis of Section 5 live in the same API for side-by-side
// comparison; the experiment runners that regenerate every figure and
// table of the paper are exposed through cmd/privtree-bench.
//
// # Performance
//
// The hot paths are engineered to be allocation-free in steady state:
// decomposition trees are stored as flat node arenas (children as
// contiguous index blocks, coordinates in chunked slabs), the per-node and
// per-query geometry writes into caller-provided buffers, and RangeCount
// performs zero heap allocations per query. Tree construction draws every
// node's noise from a splittable stream keyed by the node's path from the
// root, so subtrees can be built on a worker pool
// (SpatialOptions.Workers) while remaining a pure function of the seed:
// serial and parallel builds release identical trees.
//
// The sequence pipeline follows the same architecture: sequences are
// ingested into one columnar symbol slab with (offset, length) headers,
// truncation at l⊤ is an in-place header update, and the prediction
// suffix tree is a flat arena whose histograms live in one shared float
// slab. Split and histogram noise is keyed by the context path, so
// SequenceOptions.Workers parallelizes the build with byte-identical
// serialized output, and EstimateFrequency answers queries with zero heap
// allocations. See README.md ("Performance architecture") for the
// measured numbers.
//
// All randomness is seeded: the same seed reproduces the same tree or
// sequence model, at every Workers setting.
//
// # Serving releases
//
// cmd/privtreed (package internal/server) runs the library as a
// multi-tenant release server: datasets are registered with a total
// privacy budget ε, and a concurrent-safe ledger enforces sequential
// composition — every BuildSpatial/BuildSequenceModel release debits the
// dataset's ledger before the mechanism runs, releases with parameters
// already purchased are served from cache without a new debit (publishing
// the same released bytes twice is post-processing), and over-budget
// requests are rejected with a structured budget_exhausted error carrying
// the remaining ε. Batched range-count queries are answered from immutable
// released trees on a goroutine pool via the allocation-free RangeCount
// path; queries read only released artifacts and therefore consume no
// budget. See README.md ("Serving releases") for the HTTP API.
//
// Build entry points validate their parameters and return errors — never
// panics — on non-positive ε, unusable fanouts, or degenerate domains, so
// they can sit directly behind untrusted inputs, and the
// SpatialTree/SequenceModel UnmarshalJSON implementations reject
// malformed, non-finite, or truncated documents rather than constructing
// a corrupt artifact.
package privtree
