// Package privtree implements PrivTree, the differentially private
// hierarchical-decomposition algorithm of Zhang, Xiao & Xie (SIGMOD 2016),
// together with its two flagship applications and the baselines the paper
// evaluates against.
//
// # What PrivTree is
//
// Given a dataset D over a domain Ω, PrivTree recursively splits Ω into a
// decomposition tree (a quadtree for 2-D points) and releases the tree —
// optionally with noisy counts — under ε-differential privacy. Unlike the
// classical private-quadtree recipe, it needs NO pre-set limit on the
// recursion depth: each node's count is biased downward by depth·δ and
// clamped at θ−δ before the Laplace noise is added, which telescopes the
// privacy cost of the whole root-to-leaf decision chain into a constant.
// The noise scale is λ = (2β−1)/(β−1)·1/ε for fanout β, independent of how
// deep the tree grows.
//
// # Entry points: Mechanism, Release, Session
//
// The paper frames every output — the spatial decomposition (Section 3),
// the prediction suffix tree (Section 4), the hybrid-domain tree (Section
// 3.5), and each Figure-5 baseline — as the same object: an ε-DP release
// produced by a mechanism, composed sequentially and post-processed
// freely. The API says exactly that, with three types:
//
//   - Mechanism: a named, parameter-validated DP build. Every mechanism
//     registers into the Mechanisms() registry — "spatial", "sequence",
//     "hybrid", and "baseline/ug" … "baseline/simpletree" — and is
//     instantiated either by name from a wire-stable Params union
//     (NewMechanism) or from typed options (NewSpatialMechanism,
//     NewSequenceMechanism, NewHybridMechanism, NewBaselineMechanism).
//   - Release: the uniform artifact a mechanism produces — kind, the ε it
//     consumed, seed, a params fingerprint, and the payload. Spatial and
//     baseline releases satisfy RangeCounter, sequence releases satisfy
//     FrequencyEstimator; typed accessors (Spatial, Sequence, Hybrid)
//     recover the concrete payloads.
//   - Session: a ledger-backed release workflow. NewSession(budget) holds
//     a dataset's total privacy budget; Session.Release(mech, data, eps)
//     debits the ledger before the mechanism runs (sequential
//     composition, Lemma 2.1), serves repeated identical requests from
//     cache without a new debit (post-processing), refunds the debit when
//     a build fails, and exposes the full audit trail via History.
//
// Private data enters through NewSpatialData, NewSequenceData, and
// NewHybridData, which validate eagerly and never expose the raw
// contents.
//
// The legacy one-call builders — BuildSpatial, BuildSequenceModel,
// BuildHybrid, BuildBaseline — remain as thin wrappers over the registry
// mechanisms for callers that do not need budget accounting.
//
// On the wire, every serializable release travels in one versioned,
// self-describing envelope ({"privtree_release": 1, "kind": ..., ...});
// Decode is the single entry point, and it still loads the legacy
// per-type v0 documents through compat shims.
//
// The SVT analysis of Section 5 lives in the same module for side-by-side
// comparison; the experiment runners that regenerate every figure and
// table of the paper are exposed through cmd/privtree-bench.
//
// # Performance
//
// The hot paths are engineered to be allocation-free in steady state:
// decomposition trees are stored as flat node arenas (children as
// contiguous index blocks, coordinates in chunked slabs), the per-node and
// per-query geometry writes into caller-provided buffers, and RangeCount
// performs zero heap allocations per query. Tree construction draws every
// node's noise from a splittable stream keyed by the node's path from the
// root, so subtrees can be built on a worker pool
// (SpatialOptions.Workers) while remaining a pure function of the seed:
// serial and parallel builds release identical trees.
//
// The sequence pipeline follows the same architecture: sequences are
// ingested into one columnar symbol slab with (offset, length) headers,
// truncation at l⊤ is an in-place header update, and the prediction
// suffix tree is a flat arena whose histograms live in one shared float
// slab. Split and histogram noise is keyed by the context path, so
// SequenceOptions.Workers parallelizes the build with byte-identical
// serialized output, and EstimateFrequency answers queries with zero heap
// allocations. See README.md ("Performance architecture") for the
// measured numbers.
//
// All randomness is seeded: the same seed reproduces the same tree or
// sequence model, at every Workers setting.
//
// # Serving releases
//
// cmd/privtreed (package internal/server) runs the library as a
// multi-tenant release server: a thin tenancy layer over the public API,
// with one Session per registered dataset. Datasets are registered with a
// total privacy budget ε; every release runs a registry mechanism through
// the session, which debits the ledger before the mechanism runs, serves
// already-purchased parameters from cache without a new debit (publishing
// the same released bytes twice is post-processing), and rejects
// over-budget requests with a structured budget_exhausted error carrying
// the remaining ε. Batched range-count queries are answered from immutable
// released trees on a goroutine pool via the allocation-free RangeCount
// path; queries read only released artifacts and therefore consume no
// budget. See README.md ("Serving releases") for the HTTP API.
//
// # Durability and crash safety
//
// Sequential composition bounds the privacy loss of everything ever
// released about a dataset by the SUM of the ledger's debits — so a
// ledger that forgets a debit (a restart of an in-memory accountant) is
// not a bookkeeping bug, it is an ε violation: whoever can bounce the
// process gets the budget again, without limit. OpenSession(dir, budget)
// — or Session.WithStore — attaches a crash-safe store (internal/store)
// that makes the ledger's guarantee survive the process:
//
//   - a debit is appended to a CRC-framed write-ahead log and fsynced
//     BEFORE the mechanism runs, so no released noise can out-live its
//     debit;
//   - a refund for a failed build is durable BEFORE the error returns
//     (and if it cannot be made durable, the budget stays spent — the
//     failure direction is over-counting, never under-counting);
//   - a successful release's envelope is persisted content-addressed and
//     committed, so after a restart the same request is served from the
//     exact stored bytes with no new debit.
//
// Recovery replays the log sequentially (torn tails truncated, duplicate
// frames skipped, hostile bytes rejected without panics) and rebuilds
// spent ε, the audit trail — refunds appear as explicit entries — and
// the release cache. cmd/privtreed exposes all of this as -data-dir;
// InspectEnvelope (and the privtree inspect subcommand) reads any
// artifact's provenance without decoding its payload. See README.md
// ("Durability & crash safety") for the full argument.
//
// # Operating under load and failure
//
// Session.ReleaseContext extends the same invariants to cancellation: a
// build abandoned because its context was cancelled (a client timeout, a
// server-side deadline) has its debit refunded — durably, before the
// error returns — so a retry of the identical request pays at most one
// debit, either as a fresh build or as a cache hit against a release
// whose acknowledgment was lost. The serving layer builds on this with
// per-route deadlines and bounded admission gates that shed saturating
// load as typed 429/503 errors instead of queueing unboundedly, and the
// client package implements the matching retry discipline (capped
// jittered backoff, a retry budget, idempotency-aware classification).
// A seeded fault-injection harness (internal/faultnet plus the chaos
// test) drives the full loop through latency, resets, truncation, and
// blackholes and asserts the ledger balances exactly. See README.md
// ("Operating under load & failure").
//
// # Replication and failover
//
// The store's WAL doubles as a replication log. A replica process
// (privtreed -replica-of URL) pulls every dataset's WAL from its own
// cursor and every release artifact by content address — frames
// re-verified by CRC, artifacts by SHA-256 — and applies them through
// the same replay path as crash recovery, so a replica is a
// continuously refreshed restart-recovered copy of the primary. It
// serves the full read plane (queries, artifacts, audit) from that
// state with bit-identical envelopes and rejects writes with a
// structured read_only error; when the primary dies it keeps serving
// reads (stale-but-exact post-processing is always privacy-safe) until
// an operator promotes it. Promotion bumps a durable writer epoch —
// fsynced before the first write is accepted — and the epoch fences the
// old primary if it comes back: its stores durably refuse further
// appends rather than ever letting two live nodes debit the same
// budget. Session.ApplyReplicated and the Store replication surface
// (WALFrames, PutArtifact, Promote, Fence) expose the same machinery to
// library users; client.NewCluster gives clients endpoint-list routing
// with read round-robin and write failover. A replication chaos sweep
// (fault-injected link, primary SIGKILLed mid-debit, replica promoted)
// asserts the invariant end to end: spent ε on the promoted node equals
// the acknowledged debits exactly. See README.md ("Replication &
// failover").
//
// # Observability
//
// Instrumentation lives in internal/obs — atomic counters, gauges, and
// fixed-bucket histograms that cost zero heap allocations per
// observation, collected in a named registry the server exposes as
// Prometheus text on GET /metrics (the JSON snapshot remains at
// /metricsz). Every request carries a trace: Session.ReleaseContext
// reads it from the context and records spans for the debit, the WAL
// append, the mechanism build, the envelope encoding, and the commit,
// so one trace ID — echoed to the client as X-Trace-Id, written into
// the slow-request log, and persisted into the WAL — explains where a
// release's wall-clock and its ε went. Session.Audit (served as GET
// /v1/datasets/{name}/audit) returns that history: WAL-sequenced
// debit/refund/commit entries whose net ε equals the ledger's spent
// balance exactly, each tagged with the trace ID of the request that
// caused it.
//
// Traces outlive their responses: an in-process flight recorder
// (obs.FlightRecorder) retains completed traces in a fixed ring under
// tail-based sampling — every error, everything slower than a
// threshold, and a deterministic 1-in-N of normal traffic — and serves
// them at GET /v1/traces (filterable) and GET /v1/traces/{id}. A
// well-formed inbound X-Trace-Id is adopted, the client reuses one ID
// across a logical call's retries, and a replica records the shipped
// artifact fetch under the originating release's ID, so a single ID a
// caller stamped resolves on every node that touched the release —
// including post-hoc, from the WAL's audit trail. Latency-histogram
// buckets on /metrics carry OpenMetrics exemplars naming the last
// trace that landed in them, and the privtree CLI's top subcommand
// polls /metrics, /readyz, and /v1/traces across a node list into a
// live cluster view. See README.md ("Observability" and "Debugging
// with traces").
//
// # Streaming ingestion and continual release
//
// Data is frozen at construction; Stream (NewSpatialStream,
// NewSequenceStream) is its appendable counterpart for datasets that
// keep arriving. AppendPoints/AppendSequences validate each batch
// atomically before buffering any of it, and Seal freezes everything
// since the previous seal into an immutable *Data for exactly one epoch
// (ErrEmptyEpoch, not a charge, when nothing is pending). The privacy
// argument is epoch disjointness plus sliding-window composition
// (internal/stream): each epoch's records are released exactly once,
// debiting ε_epoch through the Session like any other release, and the
// served window — the latest alias, a sum over the last W epoch
// releases — is post-processing, so the window is (W·ε_epoch)-DP while
// any single record is touched by only ε_epoch. Sliding the window
// never refunds ε: aged-out epochs stay spent on the ledger.
// Session.AppendSeal/Seals persist the epoch boundaries (WAL-backed
// when a store is attached), and Store.LastSealedEpoch lets recovery
// and replicas agree on the seal position. cmd/privtreed exposes the
// plane as a stream spec at registration plus POST
// /v1/datasets/{name}/ingest — batches fsynced into an ingest journal
// before acknowledgment, batch_seq idempotency for exactly-once
// writers, auto-seal by count or wall clock — with crash, chaos, and
// fuzz harnesses holding the accounting exact at every boundary. See
// README.md ("Streaming & continual release").
//
// Build entry points validate their parameters and return errors — never
// panics — on non-positive ε, unusable fanouts, or degenerate domains, so
// they can sit directly behind untrusted inputs, and the
// SpatialTree/SequenceModel UnmarshalJSON implementations reject
// malformed, non-finite, or truncated documents rather than constructing
// a corrupt artifact.
package privtree
