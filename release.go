package privtree

import (
	"fmt"
	"math"
	"sync/atomic"
)

// ReleaseKind identifies the artifact family a release carries on the wire
// and in memory.
type ReleaseKind string

// The release kinds. The three tree kinds are serializable through the
// versioned envelope (see Decode); baseline releases are in-memory query
// structures only.
const (
	KindSpatial  ReleaseKind = "spatial"
	KindSequence ReleaseKind = "sequence"
	KindHybrid   ReleaseKind = "hybrid"
	KindBaseline ReleaseKind = "baseline"
)

// Release is the uniform ε-differentially-private artifact every mechanism
// produces: the paper frames the spatial decomposition, the prediction
// suffix tree, the hybrid-domain tree, and each Figure-5 baseline as the
// same object — a private release that composes sequentially and can be
// post-processed freely. A Release records which mechanism ran, the
// parameters it ran with, and the ε it consumed, alongside the payload.
//
// Releases are immutable once built; all accessors are safe for concurrent
// use.
type Release struct {
	kind      ReleaseKind
	mechanism string
	epsilon   float64
	params    Params

	spatial *SpatialTree
	model   *SequenceModel
	hybrid  *HybridTree
	counter RangeCounter // baseline payloads

	// wire caches the marshaled envelope so every consumer — MarshalJSON,
	// the store's commit, the server's artifact — serves the SAME bytes.
	// For releases recovered from a store it is pre-loaded with the exact
	// persisted bytes, which is what makes "bit-identical across a
	// restart" a guarantee instead of a marshaling coincidence.
	wire atomic.Pointer[wireEnvelope]
}

// wireEnvelope is the cached result of encoding a Release's envelope.
type wireEnvelope struct {
	blob []byte
	err  error
}

// Envelope returns the release's versioned wire envelope (the JSON that
// privtree.Decode loads), marshaled once and cached: repeated calls —
// and MarshalJSON — return the same byte slice. Callers must not mutate
// it. Baseline releases have no wire format and return an error.
func (r *Release) Envelope() ([]byte, error) {
	if e := r.wire.Load(); e != nil {
		return e.blob, e.err
	}
	blob, err := r.encodeEnvelope()
	// First writer wins, so concurrent callers settle on one byte slice.
	r.wire.CompareAndSwap(nil, &wireEnvelope{blob: blob, err: err})
	e := r.wire.Load()
	return e.blob, e.err
}

// Kind returns the artifact family.
func (r *Release) Kind() ReleaseKind { return r.kind }

// Mechanism returns the registry name of the mechanism that produced the
// release ("spatial", "baseline/ug", ...). Empty for releases decoded from
// legacy v0 documents, which do not record it.
func (r *Release) Mechanism() string { return r.mechanism }

// Epsilon returns the privacy budget the release consumed. Zero for
// releases decoded from legacy v0 documents, which do not record it.
func (r *Release) Epsilon() float64 { return r.epsilon }

// Seed returns the mechanism seed the release was built with.
func (r *Release) Seed() uint64 { return r.params.Seed }

// Params returns the parameters the mechanism ran with.
func (r *Release) Params() Params { return r.params }

// Fingerprint returns a stable identity string for the release request:
// mechanism name, ε, and every artifact-determining parameter in a fixed
// order. Two requests with equal fingerprints against the same data denote
// the same release — this is the key the Session cache dedups on, and what
// makes serving a repeat request without a new debit sound (re-publishing
// released bytes is post-processing).
func (r *Release) Fingerprint() string {
	return releaseFingerprint(r.mechanism, r.epsilon, r.params)
}

// releaseFingerprint is the shared fingerprint construction for releases
// and not-yet-built release requests.
func releaseFingerprint(mechanism string, eps float64, p Params) string {
	return fmt.Sprintf("mech=%s eps=%g %s", mechanism, eps, p.fingerprint())
}

// Spatial returns the payload as a spatial decomposition, when the release
// kind is KindSpatial.
func (r *Release) Spatial() (*SpatialTree, bool) { return r.spatial, r.spatial != nil }

// Sequence returns the payload as a sequence model, when the release kind
// is KindSequence.
func (r *Release) Sequence() (*SequenceModel, bool) { return r.model, r.model != nil }

// Hybrid returns the payload as a hybrid-domain tree, when the release
// kind is KindHybrid.
func (r *Release) Hybrid() (*HybridTree, bool) { return r.hybrid, r.hybrid != nil }

// RangeCounter returns the payload as a range-count structure: spatial
// releases and every baseline satisfy it.
func (r *Release) RangeCounter() (RangeCounter, bool) {
	switch {
	case r.spatial != nil:
		return r.spatial, true
	case r.counter != nil:
		return r.counter, true
	}
	return nil, false
}

// RangeCount makes Release itself satisfy RangeCounter for spatial and
// baseline payloads: post-processing a release never needs to know which
// mechanism produced it. Releases of other kinds answer NaN; use
// RangeCounter to branch explicitly.
func (r *Release) RangeCount(q Rect) float64 {
	if c, ok := r.RangeCounter(); ok {
		return c.RangeCount(q)
	}
	return math.NaN()
}

// FrequencyEstimator answers substring-frequency queries; SequenceModel
// and sequence-kind Releases satisfy it.
type FrequencyEstimator interface {
	EstimateFrequency(s Sequence) float64
}

// EstimateFrequency makes Release satisfy FrequencyEstimator for sequence
// payloads. Releases of other kinds answer NaN; use Sequence to branch
// explicitly.
func (r *Release) EstimateFrequency(s Sequence) float64 {
	if r.model != nil {
		return r.model.EstimateFrequency(s)
	}
	return math.NaN()
}
