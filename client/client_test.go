package client

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"privtree/internal/obs"
	"privtree/internal/server"
)

func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func testServer(t *testing.T) (*Client, *httptest.Server) {
	t.Helper()
	s, err := server.New(server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return New(ts.URL, WithHTTPClient(ts.Client()), WithRetryPolicy(fastRetry(3))), ts
}

func clusterPoints(n int) [][]float64 {
	rng := rand.New(rand.NewPCG(3, 5))
	out := make([][]float64, n)
	for i := range out {
		out[i] = []float64{rng.Float64(), rng.Float64()}
	}
	return out
}

// TestClientEndToEnd drives the full API against a real server: register,
// purchase, idempotent replay, artifact fetch (bit-identical), query.
func TestClientEndToEnd(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()

	reg, err := c.Register(ctx, RegisterRequest{Name: "e2e", Epsilon: 2.0, Points: clusterPoints(500)})
	if err != nil {
		t.Fatal(err)
	}
	if reg.N != 500 || reg.EpsilonTotal != 2.0 {
		t.Fatalf("register ack: n=%d total=%v", reg.N, reg.EpsilonTotal)
	}

	params := ReleaseParams{Epsilon: 0.5, Seed: 42}
	rel, err := c.CreateRelease(ctx, "e2e", params)
	if err != nil {
		t.Fatal(err)
	}
	if rel.Cached || rel.EpsilonSpent != 0.5 {
		t.Fatalf("first purchase: cached=%v spent=%v", rel.Cached, rel.EpsilonSpent)
	}
	again, err := c.CreateRelease(ctx, "e2e", params)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.EpsilonSpent != 0.5 || again.ID != rel.ID {
		t.Fatalf("replay: cached=%v spent=%v id=%q want cached, 0.5, %q",
			again.Cached, again.EpsilonSpent, again.ID, rel.ID)
	}

	a1, err := c.Release(ctx, "e2e", rel.ID)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := c.Release(ctx, "e2e", rel.ID)
	if err != nil {
		t.Fatal(err)
	}
	if string(a1.Payload) != string(a2.Payload) || len(a1.Payload) == 0 {
		t.Fatal("artifact refetch not bit-identical")
	}

	q, err := c.Query(ctx, "e2e", rel.ID, QueryRequest{Queries: [][]float64{{0, 0, 1, 1}, {0, 0, 0.5, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Counts) != 2 || q.Queries != 2 {
		t.Fatalf("query reply: %+v", q)
	}

	ds, err := c.Dataset(ctx, "e2e")
	if err != nil {
		t.Fatal(err)
	}
	if ds.EpsilonSpent != 0.5 || ds.NumReleases != 1 {
		t.Fatalf("dataset view: spent=%v releases=%d", ds.EpsilonSpent, ds.NumReleases)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestClientBudgetExhaustedTyped verifies the ledger rejection surfaces
// as a typed APIError with the accounting fields, and is not retried.
func TestClientBudgetExhaustedTyped(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	if _, err := c.Register(ctx, RegisterRequest{Name: "b", Epsilon: 0.3, Points: clusterPoints(100)}); err != nil {
		t.Fatal(err)
	}
	_, err := c.CreateRelease(ctx, "b", ReleaseParams{Epsilon: 0.5, Seed: 1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeBudgetExhausted {
		t.Fatalf("over-budget purchase: %v, want budget_exhausted APIError", err)
	}
	if apiErr.RemainingEpsilon == nil || *apiErr.RemainingEpsilon != 0.3 {
		t.Fatalf("budget error accounting: %+v", apiErr)
	}
}

// overloadedThenOK rejects the first n requests with the server's 429
// shape, then proxies success.
func overloadedThenOK(n int64, ok http.HandlerFunc) (http.HandlerFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error": map[string]any{"code": "overloaded", "message": "saturated"}})
			return
		}
		ok(w, r)
	}, &calls
}

// TestClientRetriesOverload verifies 429 overloaded is retried — for
// CreateRelease and even Register (shed = no server-side work) — and that
// the loop gives up with the typed error once attempts run out.
func TestClientRetriesOverload(t *testing.T) {
	okJSON := func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"release_id":"r1","kind":"spatial","cached":false}`))
	}
	h, calls := overloadedThenOK(2, okJSON)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastRetry(4)))
	rel, err := c.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rel.ID != "r1" || calls.Load() != 3 {
		t.Fatalf("id=%q calls=%d, want r1 after 3 attempts", rel.ID, calls.Load())
	}

	h2, calls2 := overloadedThenOK(1, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"name":"d","epsilon_total":1,"n":0}`))
	})
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()
	c2 := New(ts2.URL, WithRetryPolicy(fastRetry(4)))
	if _, err := c2.Register(context.Background(), RegisterRequest{Name: "d", Epsilon: 1}); err != nil {
		t.Fatalf("register through one shed: %v", err)
	}
	if calls2.Load() != 2 {
		t.Fatalf("register calls = %d, want 2", calls2.Load())
	}

	h3, _ := overloadedThenOK(1<<40, okJSON)
	ts3 := httptest.NewServer(h3)
	defer ts3.Close()
	c3 := New(ts3.URL, WithRetryPolicy(fastRetry(3)))
	_, err = c3.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.1})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeOverloaded {
		t.Fatalf("exhausted retries: %v, want overloaded APIError", err)
	}
}

// TestClientTransportRetryClassification verifies the idempotency split:
// a connection that dies mid-response is retried for CreateRelease but
// surfaced for Register.
func TestClientTransportRetryClassification(t *testing.T) {
	var calls atomic.Int64
	h := func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			panic(http.ErrAbortHandler) // reset the connection mid-flight
		}
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"release_id":"r1","kind":"spatial"}`))
	}
	ts := httptest.NewServer(http.HandlerFunc(h))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastRetry(3)))
	if _, err := c.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.1}); err != nil {
		t.Fatalf("create through reset: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("calls = %d, want 2 (one reset, one success)", calls.Load())
	}

	calls.Store(0)
	ts2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		panic(http.ErrAbortHandler)
	}))
	defer ts2.Close()
	c2 := New(ts2.URL, WithRetryPolicy(fastRetry(3)))
	_, err := c2.Register(context.Background(), RegisterRequest{Name: "d", Epsilon: 1})
	var te *TransportError
	if !errors.As(err, &te) {
		t.Fatalf("register through reset: %v, want TransportError (no retry)", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("register attempts = %d, want exactly 1: registration has no idempotency key", calls.Load())
	}
}

// TestClientBadRequestNotRetried verifies 4xx responses fail fast.
func TestClientBadRequestNotRetried(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":{"code":"bad_request","message":"nope"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastRetry(5)))
	_, err := c.Query(context.Background(), "d", "r", QueryRequest{Queries: [][]float64{{0, 0, 1, 1}}})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "bad_request" {
		t.Fatalf("got %v, want bad_request APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on 4xx)", calls.Load())
	}
}

// TestRetryBudgetBoundsAmplification verifies the token bucket fails fast
// once a string of failures drains it, instead of retrying every call to
// MaxAttempts forever.
func TestRetryBudgetBoundsAmplification(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":{"code":"overloaded","message":"saturated"}}`))
	}))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, BudgetRatio: 0.1}))
	const requests = 30
	for i := 0; i < requests; i++ {
		_, _ = c.Query(context.Background(), "d", "r", QueryRequest{Queries: [][]float64{{0, 0, 1, 1}}})
	}
	// Unbudgeted amplification would be requests*MaxAttempts = 120 calls.
	// The initial burst allows ~10 retries, deposits add ~3 more: the
	// total must sit well under 2x the request count.
	if got := calls.Load(); got >= 2*requests {
		t.Fatalf("budget failed to bound amplification: %d calls for %d requests", got, requests)
	}
	if got := calls.Load(); got < requests {
		t.Fatalf("every request should reach the wire at least once: %d < %d", got, requests)
	}
}

// TestRetryDelayShape pins the backoff window: full jitter within
// [0, base*2^n] capped at MaxDelay.
func TestRetryDelayShape(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond}.withDefaults()
	for attempt := 1; attempt <= 6; attempt++ {
		max := p.BaseDelay << (attempt - 1)
		if max > p.MaxDelay {
			max = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			if d := p.delay(attempt); d < 0 || d > max {
				t.Fatalf("attempt %d: delay %v outside [0, %v]", attempt, d, max)
			}
		}
	}
}

// TestClientStats verifies the retry loop's self-instrumentation: one
// logical call that succeeds on its third attempt records 3 attempts, 2
// retries, and nonzero backoff sleep.
func TestClientStats(t *testing.T) {
	h, _ := overloadedThenOK(2, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"release_id":"r1","kind":"spatial"}`))
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastRetry(4)))
	if _, err := c.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Requests != 1 || st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("stats = %+v, want 1 request, 3 attempts, 2 retries", st)
	}
	if st.Attempts-st.Retries != st.Requests {
		t.Fatalf("stats identity broken: %+v", st)
	}
	if st.BudgetDenied != 0 {
		t.Fatalf("budget denied = %d, want 0", st.BudgetDenied)
	}
}

// TestClientStatsBudgetDenied verifies a drained retry budget is visible
// in the stats.
func TestClientStatsBudgetDenied(t *testing.T) {
	h, _ := overloadedThenOK(1<<40, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(RetryPolicy{
		MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, BudgetRatio: 0.1}))
	for i := 0; i < 30; i++ {
		_, _ = c.Query(context.Background(), "d", "r", QueryRequest{Queries: [][]float64{{0, 0, 1, 1}}})
	}
	if st := c.Stats(); st.BudgetDenied == 0 {
		t.Fatalf("stats = %+v, want budget denials after a drained bucket", st)
	}
}

// TestClientAudit verifies the audit accessor against a real server: the
// entries' net ε equals the reported spent budget.
func TestClientAudit(t *testing.T) {
	c, _ := testServer(t)
	ctx := context.Background()
	if _, err := c.Register(ctx, RegisterRequest{Name: "aud", Epsilon: 1.0, Points: clusterPoints(200)}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateRelease(ctx, "aud", ReleaseParams{Epsilon: 0.25, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	trail, err := c.Audit(ctx, "aud")
	if err != nil {
		t.Fatal(err)
	}
	if trail.Dataset != "aud" || len(trail.Entries) == 0 {
		t.Fatalf("audit trail: %+v", trail)
	}
	var net float64
	for _, e := range trail.Entries {
		if e.Kind == "debit" || e.Kind == "refund" {
			net += e.Epsilon
		}
	}
	if net != trail.EpsilonSpent || trail.EpsilonSpent != 0.25 {
		t.Fatalf("audit net ε %v vs spent %v, want 0.25", net, trail.EpsilonSpent)
	}
}

// TestClientRetriesReuseTraceID pins the one-ID-per-logical-call
// contract: every retry attempt of one CreateRelease carries the SAME
// well-formed X-Trace-Id, and a second logical call gets a fresh one —
// so a retried release shows up server-side as one trace, not three.
func TestClientRetriesReuseTraceID(t *testing.T) {
	var mu sync.Mutex
	var ids []string
	h, _ := overloadedThenOK(2, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"release_id":"r1","kind":"spatial","cached":false}`))
	})
	capture := func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Trace-Id"))
		mu.Unlock()
		h(w, r)
	}
	ts := httptest.NewServer(http.HandlerFunc(capture))
	defer ts.Close()
	c := New(ts.URL, WithRetryPolicy(fastRetry(4)))
	if _, err := c.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.1}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(ids) != 3 {
		t.Fatalf("attempts = %d, want 3", len(ids))
	}
	if !obs.ValidTraceID(ids[0]) {
		t.Fatalf("attempt 1 trace ID %q not well-formed", ids[0])
	}
	if ids[1] != ids[0] || ids[2] != ids[0] {
		t.Fatalf("retry attempts changed trace ID: %v", ids)
	}

	// A second logical call must NOT reuse the first call's ID.
	before := ids[0]
	ids = ids[:0]
	mu.Unlock()
	_, err := c.CreateRelease(context.Background(), "d", ReleaseParams{Epsilon: 0.2})
	mu.Lock()
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) == 0 || ids[0] == before {
		t.Fatalf("second logical call reused trace ID %q", before)
	}
}
