package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Error codes the server uses that the retry layer keys on; they mirror
// internal/server's structured envelope.
const (
	CodeOverloaded       = "overloaded"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeShuttingDown     = "shutting_down"
	CodeBudgetExhausted  = "budget_exhausted"
	CodeConflict         = "conflict"
	CodeInternal         = "internal"
	CodeNotFound         = "not_found"

	// Replication-plane codes. read_only means the node is a replica and
	// the write belongs on the primary; fenced means the node was
	// superseded by a higher-epoch writer; not_ready means the node is up
	// but should not take traffic yet (replica catch-up, drain);
	// store_unavailable means a durable write failed on the serving node
	// (the attempted debit is over-counted, never leaked, so retrying is
	// privacy-safe — though it may spend fresh ε).
	CodeReadOnly         = "read_only"
	CodeFenced           = "fenced"
	CodeNotReady         = "not_ready"
	CodeStoreUnavailable = "store_unavailable"
)

// RetryPolicy tunes the client's retry loop: capped exponential backoff
// with full jitter, plus a budget that bounds the retry amplification a
// degraded server sees from this client.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts (first try included);
	// 0 means 4, 1 disables retries.
	MaxAttempts int
	// BaseDelay seeds the exponential backoff; 0 means 50ms.
	BaseDelay time.Duration
	// MaxDelay caps one backoff sleep; 0 means 2s.
	MaxDelay time.Duration
	// BudgetRatio is the retry budget: every logical call deposits this
	// many retry tokens (so a healthy client earns ~BudgetRatio retries
	// per request) and every retry withdraws one. When the bucket is
	// empty, calls fail fast instead of amplifying an outage. 0 means
	// 0.5; negative disables the budget.
	BudgetRatio float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.BudgetRatio == 0 {
		p.BudgetRatio = 0.5
	}
	return p
}

// delay returns the sleep before retry #attempt (1-based): full jitter
// over an exponentially growing, capped window. Full jitter (uniform in
// [0, cap)) desynchronizes a fleet of clients hammering a recovering
// server — deterministic backoff would re-align them into waves.
func (p RetryPolicy) delay(attempt int) time.Duration {
	window := p.BaseDelay << (attempt - 1)
	if window > p.MaxDelay || window <= 0 {
		window = p.MaxDelay
	}
	return time.Duration(rand.Int64N(int64(window) + 1))
}

// retryBudget is a token bucket shared by all of a Client's calls:
// deposits of `ratio` per logical request, withdrawals of 1 per retry,
// capped so an idle client cannot bank an unbounded burst.
type retryBudget struct {
	mu      sync.Mutex
	ratio   float64
	balance float64
	cap     float64
}

func newRetryBudget(ratio float64) *retryBudget {
	// Start with a full bucket so a fresh client can retry its first
	// requests; the steady-state rate is still bounded by ratio.
	const burst = 10
	return &retryBudget{ratio: ratio, balance: burst, cap: burst}
}

func (b *retryBudget) deposit() {
	if b.ratio < 0 {
		return
	}
	b.mu.Lock()
	if b.balance += b.ratio; b.balance > b.cap {
		b.balance = b.cap
	}
	b.mu.Unlock()
}

func (b *retryBudget) withdraw() bool {
	if b.ratio < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.balance < 1 {
		return false
	}
	b.balance--
	return true
}

// retryClass is a call's idempotency classification.
type retryClass int

const (
	// retryAlways marks calls that are safe to retry after any failure:
	// reads, queries (post-processing), and release creation (the
	// (params, seed) fingerprint is a server-side idempotency key, and a
	// failed build's debit is refunded durably before the error is sent).
	retryAlways retryClass = iota
	// retryIfUnadmitted marks calls with no idempotency key (Register):
	// retried only on structured rejections that prove the server did no
	// work — shed (429 overloaded) or draining (503 shutting_down).
	retryIfUnadmitted
)

// TransportError wraps a failure below the API layer: dial, reset,
// timeout, or an undecodable/truncated response. The request may or may
// not have reached the server.
type TransportError struct {
	Method string
	Path   string
	Err    error
}

func (e *TransportError) Error() string {
	return fmt.Sprintf("client: %s %s: %v", e.Method, e.Path, e.Err)
}
func (e *TransportError) Unwrap() error { return e.Err }

// APIError is a structured non-2xx response from the server.
type APIError struct {
	StatusCode int
	Code       string
	Message    string
	// RetryAfter is the server's backoff hint (0 when absent).
	RetryAfter time.Duration

	// Budget accounting, set for CodeBudgetExhausted.
	RequestedEpsilon *float64 `json:"requested_epsilon,omitempty"`
	RemainingEpsilon *float64 `json:"remaining_epsilon,omitempty"`
	TotalEpsilon     *float64 `json:"total_epsilon,omitempty"`
}

func (e *APIError) Error() string {
	return fmt.Sprintf("client: server returned %d %s: %s", e.StatusCode, e.Code, e.Message)
}

// decodeAPIError parses a non-2xx response into an *APIError; an
// undecodable error body becomes a TransportError so idempotent calls
// treat it like any other mangled response.
func decodeAPIError(resp *http.Response, method, path string) error {
	var env struct {
		Error *APIError `json:"error"`
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err == nil && json.Unmarshal(blob, &env) == nil && env.Error != nil {
		apiErr := env.Error
		apiErr.StatusCode = resp.StatusCode
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
				apiErr.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return apiErr
	}
	return &TransportError{Method: method, Path: path,
		Err: fmt.Errorf("status %d with undecodable error body", resp.StatusCode)}
}

// retryable decides whether err justifies another attempt for a call of
// the given class. clustered reports whether a retry can land on a
// DIFFERENT endpoint — which makes rejections that are about the node,
// not the request (read_only, fenced, not_ready, a lagging replica's
// not_found), worth another attempt.
func retryable(err error, class retryClass, clustered bool) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Code {
		case CodeOverloaded, CodeShuttingDown:
			// The server rejected at admission, before any work: safe for
			// every call class, including Register.
			return true
		case CodeReadOnly, CodeFenced:
			// Structured proof the node did no work — but a retry only
			// helps when the route can advance to another node.
			return clustered
		case CodeNotReady:
			// The node refused traffic outright; another node (or the same
			// one, later) may be ready.
			return true
		case CodeDeadlineExceeded, CodeInternal, CodeStoreUnavailable:
			// Work started and died; safe only for calls with an
			// idempotency story (refund-on-failure + fingerprint dedup;
			// for store_unavailable the failed debit is over-counted,
			// never leaked).
			return class == retryAlways
		case CodeNotFound:
			// On a cluster read this can be replica lag: the release
			// exists on the primary but has not shipped yet. Another
			// endpoint may have it.
			return clustered && class == retryAlways
		default:
			// Client errors (bad_request, conflict, too_large) and
			// budget_exhausted: retrying cannot help.
			return false
		}
	}
	var te *TransportError
	if errors.As(err, &te) {
		// The attempt may have reached the server and even succeeded.
		return class == retryAlways
	}
	return false
}

// retryAfterOf extracts the server's Retry-After hint, 0 if none.
func retryAfterOf(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}
