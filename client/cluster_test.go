package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privtree/internal/server"
)

// clusterPair starts a persistent primary and a replica syncing from it,
// both registered with the cleanup stack, and returns them with their
// test servers.
func clusterPair(t *testing.T) (primary, replica *server.Server, tsP, tsR *httptest.Server) {
	t.Helper()
	var err error
	primary, err = server.New(server.Options{DataDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsP = httptest.NewServer(primary)
	t.Cleanup(tsP.Close)
	t.Cleanup(func() { primary.Close() })
	replica, err = server.New(server.Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: tsP.URL, ReplicaPoll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsR = httptest.NewServer(replica)
	t.Cleanup(tsR.Close)
	t.Cleanup(func() { replica.Close() })
	return primary, replica, tsP, tsR
}

// TestClusterRoutingAndFailover drives the cluster client against a real
// primary/replica pair: writes land on the primary regardless of
// endpoint order, reads round-robin over both nodes, and after the
// primary dies and the replica is promoted, the same client's writes
// follow the failover with no configuration change.
func TestClusterRoutingAndFailover(t *testing.T) {
	primary, _, tsP, tsR := clusterPair(t)
	ctx := context.Background()

	// Replica FIRST in the endpoint list: the initial write must bounce
	// off its read_only rejection and advance to the primary.
	cc, err := NewCluster([]string{tsR.URL, tsP.URL}, WithRetryPolicy(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(nil); err == nil {
		t.Fatal("NewCluster accepted an empty endpoint list")
	}

	reg, err := cc.Register(ctx, RegisterRequest{Name: "ha", Epsilon: 2.0, Points: clusterPoints(400)})
	if err != nil {
		t.Fatalf("register through cluster client: %v", err)
	}
	if reg.N != 400 {
		t.Fatalf("register ack n=%d", reg.N)
	}
	rel, err := cc.CreateRelease(ctx, "ha", ReleaseParams{Epsilon: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the replica to be ready, then verify reads succeed many
	// times in a row — round-robin means both nodes serve them.
	replicaClient := New(tsR.URL, WithRetryPolicy(fastRetry(3)))
	deadline := time.Now().Add(15 * time.Second)
	for replicaClient.Ready(ctx) != nil {
		if time.Now().After(deadline) {
			t.Fatal("replica never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		if _, err := cc.Query(ctx, "ha", rel.ID, QueryRequest{Queries: [][]float64{{0.1, 0.1, 0.9, 0.9}}}); err != nil {
			t.Fatalf("cluster read %d: %v", i, err)
		}
	}

	// Kill the primary and promote the replica. The next write through
	// the SAME cluster client must fail over: the dead endpoint yields a
	// transport error, the cursor advances, and the promoted node serves
	// the write.
	tsP.CloseClientConnections()
	tsP.Close()
	if _, err := replicaClient.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	rel2, err := cc.CreateRelease(ctx, "ha", ReleaseParams{Epsilon: 0.25, Seed: 43})
	if err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if rel2.EpsilonSpent != 0.75 {
		t.Fatalf("post-failover spent = %v, want 0.75 (history continued)", rel2.EpsilonSpent)
	}
	// Reads keep working (degraded: one node down, round-robin retries
	// onto the live one).
	if _, err := cc.Query(ctx, "ha", rel2.ID, QueryRequest{Queries: [][]float64{{0.2, 0.2, 0.8, 0.8}}}); err != nil {
		t.Fatalf("post-failover read: %v", err)
	}

	// Promote on a cluster client is refused — it targets one node.
	if _, err := cc.Promote(ctx); err == nil {
		t.Fatal("cluster client Promote succeeded")
	}
	_ = primary
}

// TestReadyDistinguishesCatchUp proves Ready reports not_ready (with the
// structured code) for a replica that cannot reach its primary, while
// Health stays fine.
func TestReadyDistinguishesCatchUp(t *testing.T) {
	s, err := server.New(server.Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://127.0.0.1:1", ReplicaPoll: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	ctx := context.Background()
	err = c.Ready(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNotReady || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("Ready = %v, want 503 not_ready", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health on a catching-up replica: %v", err)
	}
}
