package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"privtree/internal/server"
)

// clusterPair starts a persistent primary and a replica syncing from it,
// both registered with the cleanup stack, and returns them with their
// test servers.
func clusterPair(t *testing.T) (primary, replica *server.Server, tsP, tsR *httptest.Server) {
	t.Helper()
	var err error
	primary, err = server.New(server.Options{DataDir: t.TempDir(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	tsP = httptest.NewServer(primary)
	t.Cleanup(tsP.Close)
	t.Cleanup(func() { primary.Close() })
	replica, err = server.New(server.Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: tsP.URL, ReplicaPoll: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsR = httptest.NewServer(replica)
	t.Cleanup(tsR.Close)
	t.Cleanup(func() { replica.Close() })
	return primary, replica, tsP, tsR
}

// TestClusterRoutingAndFailover drives the cluster client against a real
// primary/replica pair: writes land on the primary regardless of
// endpoint order, reads round-robin over both nodes, and after the
// primary dies and the replica is promoted, the same client's writes
// follow the failover with no configuration change.
func TestClusterRoutingAndFailover(t *testing.T) {
	primary, _, tsP, tsR := clusterPair(t)
	ctx := context.Background()

	// Replica FIRST in the endpoint list: the initial write must bounce
	// off its read_only rejection and advance to the primary.
	cc, err := NewCluster([]string{tsR.URL, tsP.URL}, WithRetryPolicy(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewCluster(nil); err == nil {
		t.Fatal("NewCluster accepted an empty endpoint list")
	}

	reg, err := cc.Register(ctx, RegisterRequest{Name: "ha", Epsilon: 2.0, Points: clusterPoints(400)})
	if err != nil {
		t.Fatalf("register through cluster client: %v", err)
	}
	if reg.N != 400 {
		t.Fatalf("register ack n=%d", reg.N)
	}
	rel, err := cc.CreateRelease(ctx, "ha", ReleaseParams{Epsilon: 0.5, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the replica to be ready, then verify reads succeed many
	// times in a row — round-robin means both nodes serve them.
	replicaClient := New(tsR.URL, WithRetryPolicy(fastRetry(3)))
	deadline := time.Now().Add(15 * time.Second)
	for replicaClient.Ready(ctx) != nil {
		if time.Now().After(deadline) {
			t.Fatal("replica never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 6; i++ {
		if _, err := cc.Query(ctx, "ha", rel.ID, QueryRequest{Queries: [][]float64{{0.1, 0.1, 0.9, 0.9}}}); err != nil {
			t.Fatalf("cluster read %d: %v", i, err)
		}
	}

	// Kill the primary and promote the replica. The next write through
	// the SAME cluster client must fail over: the dead endpoint yields a
	// transport error, the cursor advances, and the promoted node serves
	// the write.
	tsP.CloseClientConnections()
	tsP.Close()
	if _, err := replicaClient.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	rel2, err := cc.CreateRelease(ctx, "ha", ReleaseParams{Epsilon: 0.25, Seed: 43})
	if err != nil {
		t.Fatalf("post-failover write: %v", err)
	}
	if rel2.EpsilonSpent != 0.75 {
		t.Fatalf("post-failover spent = %v, want 0.75 (history continued)", rel2.EpsilonSpent)
	}
	// Reads keep working (degraded: one node down, round-robin retries
	// onto the live one).
	if _, err := cc.Query(ctx, "ha", rel2.ID, QueryRequest{Queries: [][]float64{{0.2, 0.2, 0.8, 0.8}}}); err != nil {
		t.Fatalf("post-failover read: %v", err)
	}

	// Promote on a cluster client is refused — it targets one node.
	if _, err := cc.Promote(ctx); err == nil {
		t.Fatal("cluster client Promote succeeded")
	}
	_ = primary
}

// TestClusterStreamIngestFailover proves ingest is classified as a
// write: batches route to the sticky primary (bouncing off the replica's
// read_only rejection), replays of an explicit batch sequence dedup
// server-side, the replica's latest window converges bit-identically to
// the primary's, and after failover the same client keeps ingesting with
// the epoch history and ε accounting intact.
func TestClusterStreamIngestFailover(t *testing.T) {
	_, _, tsP, tsR := clusterPair(t)
	ctx := context.Background()

	// Replica FIRST: the initial ingest must advance off it.
	cc, err := NewCluster([]string{tsR.URL, tsP.URL}, WithRetryPolicy(fastRetry(4)))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cc.Register(ctx, RegisterRequest{
		Name: "sw", Epsilon: 1.0,
		Domain: &Rect{Lo: []float64{0, 0}, Hi: []float64{1, 1}},
		Stream: &StreamSpec{EpochEpsilon: 0.125, Window: 2, Seed: 7},
	})
	if err != nil {
		t.Fatalf("register streaming dataset: %v", err)
	}

	pts := clusterPoints(90)
	seq := uint64(0)
	ingest := func(c *Client, batch [][]float64, seal bool) *IngestResult {
		t.Helper()
		seq++
		res, err := c.Ingest(ctx, "sw", IngestRequest{BatchSeq: seq, Points: batch, Seal: seal})
		if err != nil {
			t.Fatalf("ingest batch %d: %v", seq, err)
		}
		return res
	}

	res := ingest(cc, pts[:30], true)
	if !res.Sealed || res.Epoch != 1 || res.EpsilonSpent != 0.125 {
		t.Fatalf("first seal ack = %+v", res)
	}
	// Replay the same batch sequence: acked as a duplicate, nothing applied.
	dup, err := cc.Ingest(ctx, "sw", IngestRequest{BatchSeq: seq, Points: pts[:30]})
	if err != nil {
		t.Fatal(err)
	}
	if !dup.Duplicate || dup.Applied != 0 {
		t.Fatalf("replayed batch ack = %+v, want duplicate with nothing applied", dup)
	}

	ingest(cc, pts[30:60], true)
	res = ingest(cc, pts[60:], true)
	if res.Epoch != 3 || res.LastEpoch != 3 {
		t.Fatalf("third seal ack = %+v", res)
	}
	// Window of 2: composed window ε stays at 2×0.125 while total spend is 3×0.125.
	if res.WindowEpsilon != 0.25 || res.EpsilonSpent != 0.375 {
		t.Fatalf("after 3 seals: window ε=%v spent=%v, want 0.25 / 0.375", res.WindowEpsilon, res.EpsilonSpent)
	}

	// Wait for the replica's window to reach epoch 3, then the latest
	// alias must answer bit-identically on both nodes.
	pc := New(tsP.URL, WithRetryPolicy(fastRetry(3)))
	rc := New(tsR.URL, WithRetryPolicy(fastRetry(3)))
	deadline := time.Now().Add(15 * time.Second)
	for {
		info, err := rc.Dataset(ctx, "sw")
		if err == nil && info.Stream != nil && info.Stream.LastEpoch == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached epoch 3 (info err=%v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
	q := QueryRequest{Queries: [][]float64{{0, 0, 1, 1}, {0.25, 0.25, 0.75, 0.75}, {0.1, 0.6, 0.4, 0.9}}}
	pAns, err := pc.Query(ctx, "sw", "latest", q)
	if err != nil {
		t.Fatal(err)
	}
	rAns, err := rc.Query(ctx, "sw", "latest", q)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pAns.Counts {
		if pAns.Counts[i] != rAns.Counts[i] {
			t.Fatalf("latest diverges at query %d: primary %v, replica %v", i, pAns.Counts, rAns.Counts)
		}
	}

	// Failover: kill the primary, promote the replica, keep ingesting
	// through the SAME cluster client.
	tsP.CloseClientConnections()
	tsP.Close()
	if _, err := rc.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}
	res = ingest(cc, pts[:30], true)
	if res.Epoch != 4 || res.EpsilonSpent != 0.5 {
		t.Fatalf("post-failover seal ack = %+v, want epoch 4 spent 0.5", res)
	}
}

// TestReadyDistinguishesCatchUp proves Ready reports not_ready (with the
// structured code) for a replica that cannot reach its primary, while
// Health stays fine.
func TestReadyDistinguishesCatchUp(t *testing.T) {
	s, err := server.New(server.Options{
		DataDir: t.TempDir(), Workers: 1,
		ReplicaOf: "http://127.0.0.1:1", ReplicaPoll: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	c := New(ts.URL, WithRetryPolicy(RetryPolicy{MaxAttempts: 1}))
	ctx := context.Background()
	err = c.Ready(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != CodeNotReady || apiErr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("Ready = %v, want 503 not_ready", err)
	}
	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health on a catching-up replica: %v", err)
	}
}
