// Package client is the Go client for the privtreed HTTP API: typed
// requests and responses for registration, release purchase, artifact
// fetch, and batched queries, with context deadlines and retries that are
// safe with respect to the server's privacy accounting.
//
// # Why retries never double-spend ε
//
// Retrying a failed request against a server that charges a privacy
// budget looks dangerous: if the first attempt debited the ledger and the
// ack was lost, wouldn't a retry pay again? No — every outcome of a
// release request leaves the server in a state where the retry pays at
// most one debit:
//
//   - Shed (429 overloaded) or refused during shutdown (503
//     shutting_down): the request was rejected at admission, before any
//     ledger traffic. Nothing happened; retrying is trivially safe.
//   - Died mid-build (503 deadline_exceeded, or the connection dropped):
//     the server refunds the debit durably *before* the error is
//     written, so by the time the client can possibly retry, spent ε is
//     back where it started.
//   - Completed but the acknowledgment was lost (reset, truncated
//     response): the release was committed under its parameter
//     fingerprint. The retry carries the same (params, seed), the server
//     dedups it against the committed release, and serves the cached
//     artifact with no new debit — re-sending released bytes is
//     post-processing.
//
// Queries are free by construction (they touch only released artifacts)
// and GETs are read-only, so both retry without restriction. The one
// call without a server-side idempotency key is Register: a lost ack
// there means a retry can hit 409 conflict, so the client only retries
// registration when the server said it did nothing (shed or draining) —
// transport-level failures surface to the caller, who can GET the
// dataset to find out whether the registration landed.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"

	"privtree/internal/obs"
)

// Client talks to a privtreed server — or, via NewCluster, to a
// replicated deployment. It is safe for concurrent use.
type Client struct {
	base  string
	httpc *http.Client
	retry RetryPolicy
	bkt   *retryBudget

	// Cluster mode (NewCluster): endpoints is the node list, primary the
	// sticky index writes go to (advanced on read_only / fenced /
	// transport failures), readCursor the round-robin cursor reads
	// rotate on. Empty endpoints means single-node mode using base.
	endpoints  []string
	primary    atomic.Int64
	readCursor atomic.Uint64

	// Self-instrumentation: lock-free obs atomics fed by the retry loop,
	// snapshotted by Stats. A fleet operator reads these to see how much
	// retry amplification and backoff sleep this client contributed.
	requests     obs.Counter
	attempts     obs.Counter
	retries      obs.Counter
	budgetDenied obs.Counter
	backoffNanos obs.Counter
}

// Stats is a point-in-time snapshot of the client's own retry
// instrumentation.
type Stats struct {
	// Requests counts logical API calls (Register, CreateRelease, …).
	Requests uint64
	// Attempts counts HTTP attempts; Attempts - Requests is completed
	// retry volume.
	Attempts uint64
	// Retries counts attempts beyond a call's first.
	Retries uint64
	// BudgetDenied counts retries refused by the retry budget (the call
	// failed fast instead of amplifying an outage).
	BudgetDenied uint64
	// Backoff is the total time spent sleeping between attempts.
	Backoff time.Duration
}

// Stats snapshots the client's retry instrumentation. Safe to call
// concurrently with in-flight requests.
func (c *Client) Stats() Stats {
	return Stats{
		Requests:     c.requests.Value(),
		Attempts:     c.attempts.Value(),
		Retries:      c.retries.Value(),
		BudgetDenied: c.budgetDenied.Value(),
		Backoff:      time.Duration(c.backoffNanos.Value()),
	}
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, keep-alive policy). The default is a dedicated client with
// a 30s overall timeout.
func WithHTTPClient(h *http.Client) Option { return func(c *Client) { c.httpc = h } }

// WithRetryPolicy substitutes the retry policy. The zero RetryPolicy
// means the documented defaults; use RetryPolicy{MaxAttempts: 1} to
// disable retries entirely.
func WithRetryPolicy(p RetryPolicy) Option { return func(c *Client) { c.retry = p } }

// New returns a client for the server at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/")}
	for _, o := range opts {
		o(c)
	}
	if c.httpc == nil {
		c.httpc = &http.Client{Timeout: 30 * time.Second}
	}
	c.retry = c.retry.withDefaults()
	c.bkt = newRetryBudget(c.retry.BudgetRatio)
	return c
}

// NewCluster returns a client for a replicated deployment: endpoints
// lists every node (primary and replicas, in any order).
//
// Reads (queries, artifact and dataset fetches, audit) round-robin
// across all endpoints and fail over to the next node on transport
// errors and node-level rejections (not_ready, and not_found caused by
// replica lag). Writes (Register, CreateRelease) stick to one endpoint
// and advance to the next when it proves to be the wrong one — a
// structured read_only or fenced rejection, or a transport failure —
// which is how the client follows a failover: after a replica is
// promoted, the first write bounced by the dead or fenced old primary
// rolls the sticky cursor until it lands on the new one. Every retry
// still spends the same retry budget as single-node mode, so a fully
// down cluster fails fast instead of spinning.
func NewCluster(endpoints []string, opts ...Option) (*Client, error) {
	if len(endpoints) == 0 {
		return nil, fmt.Errorf("client: NewCluster needs at least one endpoint")
	}
	trimmed := make([]string, len(endpoints))
	for i, e := range endpoints {
		if e = strings.TrimRight(e, "/"); e == "" {
			return nil, fmt.Errorf("client: empty endpoint at index %d", i)
		}
		trimmed[i] = e
	}
	c := New(trimmed[0], opts...)
	c.endpoints = trimmed
	return c, nil
}

// Endpoints returns the cluster endpoint list (nil in single-node mode).
func (c *Client) Endpoints() []string {
	out := make([]string, len(c.endpoints))
	copy(out, c.endpoints)
	if len(out) == 0 {
		return nil
	}
	return out
}

// clustered reports whether retries can land on a different endpoint.
func (c *Client) clustered() bool { return len(c.endpoints) > 1 }

// pickBase resolves the endpoint for one attempt: the sticky primary
// for writes, the next round-robin endpoint for reads.
func (c *Client) pickBase(write bool) (base string, idx int64) {
	if len(c.endpoints) == 0 {
		return c.base, -1
	}
	if write {
		idx = c.primary.Load() % int64(len(c.endpoints))
		return c.endpoints[idx], idx
	}
	idx = int64(c.readCursor.Add(1) % uint64(len(c.endpoints)))
	return c.endpoints[idx], idx
}

// advancePrimary rolls the sticky write endpoint past idx, exactly once
// per observed failure (concurrent failures on the same endpoint
// advance a single step, not one step each).
func (c *Client) advancePrimary(idx int64) {
	if idx >= 0 && len(c.endpoints) > 1 {
		c.primary.CompareAndSwap(idx, (idx+1)%int64(len(c.endpoints)))
	}
}

// Rect is the wire form of an axis-aligned domain box.
type Rect struct {
	Lo []float64 `json:"lo"`
	Hi []float64 `json:"hi"`
}

// Synthetic asks the server to generate one of the paper's synthetic
// datasets server-side.
type Synthetic struct {
	Generator string `json:"generator"`
	N         int    `json:"n"`
	Seed      uint64 `json:"seed"`
}

// RegisterRequest is the POST /v1/datasets body. Exactly one data source
// — CSV, Points, Sequences, or Synthetic — must be set.
type RegisterRequest struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind,omitempty"`
	Epsilon float64 `json:"epsilon"`

	Domain    *Rect       `json:"domain,omitempty"`
	CSV       string      `json:"csv,omitempty"`
	Points    [][]float64 `json:"points,omitempty"`
	Synthetic *Synthetic  `json:"synthetic,omitempty"`

	Alphabet  int     `json:"alphabet,omitempty"`
	Sequences [][]int `json:"sequences,omitempty"`

	// Stream registers a streaming dataset: it starts empty (set no data
	// source), requires Domain (spatial) or Alphabet (sequence), and is
	// fed through Ingest.
	Stream *StreamSpec `json:"stream,omitempty"`
}

// StreamSpec is a streaming dataset's epoch policy plus the per-epoch
// release knobs. Each sealed epoch debits EpochEpsilon; the server's
// `latest` alias serves the last Window epochs, whose composed privacy
// cost is bounded by Window × EpochEpsilon.
type StreamSpec struct {
	EpochEpsilon float64 `json:"epoch_epsilon"`
	Window       int     `json:"window"`
	SealEvery    int     `json:"seal_every,omitempty"`
	IntervalMS   int64   `json:"interval_ms,omitempty"`

	Seed               uint64  `json:"seed,omitempty"`
	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`
	MaxLength          int     `json:"max_length,omitempty"`
}

// ReleaseParams selects the mechanism knobs and the ε one release debits.
// (Params, Seed) is the release's idempotency key: the server dedups an
// identical request against the committed release without a second debit.
type ReleaseParams struct {
	Epsilon float64 `json:"epsilon"`
	Seed    uint64  `json:"seed"`

	Fanout             int     `json:"fanout,omitempty"`
	Theta              float64 `json:"theta,omitempty"`
	TreeBudgetFraction float64 `json:"tree_budget_fraction,omitempty"`
	MaxDepth           int     `json:"max_depth,omitempty"`
	AffectedLeaves     int     `json:"affected_leaves,omitempty"`

	MaxLength int `json:"max_length,omitempty"`
}

// ReleaseInfo is one purchased release's metadata.
type ReleaseInfo struct {
	ID        string        `json:"release_id"`
	Kind      string        `json:"kind"`
	Params    ReleaseParams `json:"params"`
	CreatedAt time.Time     `json:"created_at"`
	Nodes     int           `json:"nodes"`
	Height    int           `json:"height,omitempty"`
}

// DatasetInfo is the privacy-safe view of a dataset: budget arithmetic
// and release metadata, never raw data.
type DatasetInfo struct {
	Name             string        `json:"name"`
	Kind             string        `json:"kind"`
	Dims             int           `json:"dims,omitempty"`
	EpsilonTotal     float64       `json:"epsilon_total"`
	EpsilonSpent     float64       `json:"epsilon_spent"`
	EpsilonRemaining float64       `json:"epsilon_remaining"`
	StoreBytes       int64         `json:"store_bytes,omitempty"`
	Releases         []ReleaseInfo `json:"releases,omitempty"`
	NumReleases      int           `json:"num_releases"`
	Stream           *StreamStatus `json:"stream,omitempty"`
}

// StreamStatus is the streaming state of a dataset: epoch positions and
// the served window's composed ε.
type StreamStatus struct {
	EpochEpsilon  float64   `json:"epoch_epsilon"`
	Window        int       `json:"window"`
	LastEpoch     uint64    `json:"last_epoch"`
	WindowEpochs  int       `json:"window_epochs"`
	WindowEpsilon float64   `json:"window_epsilon"`
	Pending       int       `json:"pending"`
	LastSealedAt  time.Time `json:"last_sealed_at,omitempty"`
}

// RegisterResult acknowledges a registration; N is the exact ingested
// cardinality, disclosed only to the registrant.
type RegisterResult struct {
	DatasetInfo
	N int `json:"n"`
}

// ReleaseResult is the create-release reply: the release plus the ledger
// position it left behind. Cached reports an idempotent replay — the
// parameters matched an earlier purchase and no new ε was spent.
type ReleaseResult struct {
	ReleaseInfo
	Cached           bool    `json:"cached"`
	EpsilonSpent     float64 `json:"epsilon_spent"`
	EpsilonRemaining float64 `json:"epsilon_remaining"`
}

// Artifact is a released artifact in the library's versioned wire
// envelope; Payload round-trips through privtree.Decode.
type Artifact struct {
	ReleaseID string          `json:"release_id"`
	Kind      string          `json:"kind"`
	Params    ReleaseParams   `json:"params"`
	Payload   json.RawMessage `json:"artifact"`
}

// QueryRequest is a batched query: rectangles (flat lo...hi rows) against
// a spatial release, or symbol strings against a sequence release.
type QueryRequest struct {
	Queries [][]float64 `json:"queries,omitempty"`
	Strings [][]int     `json:"strings,omitempty"`
}

// QueryResult carries one answered batch.
type QueryResult struct {
	ReleaseID string    `json:"release_id"`
	Counts    []float64 `json:"counts"`
	Queries   int       `json:"queries"`
	ElapsedNS int64     `json:"elapsed_ns"`
}

// Register registers a dataset. It retries only when the server
// provably did nothing (shed / draining rejections): registration has no
// server-side idempotency key, so a transport failure is surfaced — call
// Dataset to discover whether the registration landed before retrying.
func (c *Client) Register(ctx context.Context, req RegisterRequest) (*RegisterResult, error) {
	var out RegisterResult
	if err := c.do(ctx, http.MethodPost, "/v1/datasets", req, &out, retryIfUnadmitted, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Datasets lists every registered dataset.
func (c *Client) Datasets(ctx context.Context) ([]DatasetInfo, error) {
	var out struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if err := c.do(ctx, http.MethodGet, "/v1/datasets", nil, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return out.Datasets, nil
}

// Dataset fetches one dataset with its releases.
func (c *Client) Dataset(ctx context.Context, name string) (*DatasetInfo, error) {
	var out DatasetInfo
	if err := c.do(ctx, http.MethodGet, "/v1/datasets/"+url.PathEscape(name), nil, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// CreateRelease purchases (or idempotently refetches) a release. Safe to
// retry without restriction: see the package comment — a shed request
// never reached the ledger, a request that died mid-build had its debit
// refunded durably first, and a committed release with a lost ack dedups
// by (params, seed) fingerprint with no second debit.
func (c *Client) CreateRelease(ctx context.Context, dataset string, p ReleaseParams) (*ReleaseResult, error) {
	var out ReleaseResult
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/releases"
	if err := c.do(ctx, http.MethodPost, path, p, &out, retryAlways, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Release fetches a released artifact. Releases are immutable: fetching
// one twice returns bit-identical payloads.
func (c *Client) Release(ctx context.Context, dataset, id string) (*Artifact, error) {
	var out Artifact
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/releases/" + url.PathEscape(id)
	if err := c.do(ctx, http.MethodGet, path, nil, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query answers a batch against a released artifact. Queries touch only
// released data (they are free post-processing), so retrying is always
// safe.
func (c *Client) Query(ctx context.Context, dataset, id string, q QueryRequest) (*QueryResult, error) {
	var out QueryResult
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/releases/" + url.PathEscape(id) + "/query"
	if err := c.do(ctx, http.MethodPost, path, q, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// IngestRequest is one batch of records appended to a streaming
// dataset. BatchSeq is the client-supplied idempotency token: the server
// applies each sequence number at most once and acks replays as
// duplicates, so callers that set strictly increasing sequence numbers
// may retry blindly. Zero lets the server assign the next number, which
// forfeits retry safety for that batch.
type IngestRequest struct {
	BatchSeq uint64      `json:"batch_seq,omitempty"`
	Points   [][]float64 `json:"points,omitempty"`
	Strings  [][]int     `json:"strings,omitempty"`
	Seal     bool        `json:"seal,omitempty"`
}

// IngestResult acknowledges an ingest batch. BatchSeq echoes the applied
// (or server-assigned) sequence number; when the batch triggered a seal,
// Sealed/Epoch/ReleaseID describe the epoch it froze and SealError
// carries a seal failure that did not affect the already-durable batch.
type IngestResult struct {
	BatchSeq      uint64  `json:"batch_seq"`
	Applied       int     `json:"applied"`
	Duplicate     bool    `json:"duplicate,omitempty"`
	Pending       int     `json:"pending"`
	Sealed        bool    `json:"sealed,omitempty"`
	Epoch         uint64  `json:"epoch,omitempty"`
	ReleaseID     string  `json:"release_id,omitempty"`
	LastEpoch     uint64  `json:"last_epoch"`
	WindowEpsilon float64 `json:"window_epsilon"`
	EpsilonSpent  float64 `json:"epsilon_spent"`
	SealError     string  `json:"seal_error,omitempty"`
}

// Ingest appends a batch to a streaming dataset. Ingest is a write: in
// cluster mode it routes to the sticky primary and fails over on
// read_only/fenced redirects like every other mutation. With a non-zero
// BatchSeq the server dedups replays, so the batch retries without
// restriction; with BatchSeq zero a retry could apply twice, so only
// pre-admission rejections (429/shed) are retried.
func (c *Client) Ingest(ctx context.Context, dataset string, req IngestRequest) (*IngestResult, error) {
	var out IngestResult
	class := retryAlways
	if req.BatchSeq == 0 {
		class = retryIfUnadmitted
	}
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/ingest"
	if err := c.do(ctx, http.MethodPost, path, req, &out, class, true); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health probes liveness.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil, retryAlways, false)
}

// Metrics fetches the operational counters document (the JSON view at
// /metricsz; the server's /metrics now serves Prometheus text for
// scrapers).
func (c *Client) Metrics(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/metricsz", nil, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return out, nil
}

// AuditEntry is one row of a dataset's audit trail: a ledger event
// (debit/refund) or a release commit, in WAL order where the server is
// persistent, carrying the trace ID of the request that caused it.
type AuditEntry struct {
	Seq     uint64    `json:"seq,omitempty"`
	Kind    string    `json:"kind"`
	Epsilon float64   `json:"epsilon,omitempty"` // refunds arrive negated
	Key     string    `json:"key"`
	TraceID string    `json:"trace_id,omitempty"`
	SHA256  string    `json:"sha256,omitempty"`
	At      time.Time `json:"at"`
}

// AuditTrail is the GET /v1/datasets/{name}/audit reply: the budget
// arithmetic plus the event history that explains it — the net of the
// entries' debits and refunds equals EpsilonSpent exactly.
type AuditTrail struct {
	Dataset          string       `json:"dataset"`
	EpsilonTotal     float64      `json:"epsilon_total"`
	EpsilonSpent     float64      `json:"epsilon_spent"`
	EpsilonRemaining float64      `json:"epsilon_remaining"`
	WALSeq           uint64       `json:"wal_seq"`
	Entries          []AuditEntry `json:"entries"`
}

// Audit fetches a dataset's ε accounting history. Read-only, so it
// retries without restriction.
func (c *Client) Audit(ctx context.Context, dataset string) (*AuditTrail, error) {
	var out AuditTrail
	path := "/v1/datasets/" + url.PathEscape(dataset) + "/audit"
	if err := c.do(ctx, http.MethodGet, path, nil, &out, retryAlways, false); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes readiness (GET /readyz): whether the node should receive
// traffic, as opposed to Health's "is the process up". A replica is not
// ready until it has fully caught up with its primary once; a draining
// server is not ready. In cluster mode the probe targets the current
// write endpoint. Returns nil when ready; a not-ready node returns an
// *APIError with code "not_ready".
func (c *Client) Ready(ctx context.Context) error {
	base, _ := c.pickBase(true)
	c.requests.Inc()
	c.attempts.Inc()
	return c.once(ctx, base, http.MethodGet, "/readyz", nil, obs.NewID(), nil)
}

// PromoteResult acknowledges a promotion: the new writer epoch granted
// to each dataset's store.
type PromoteResult struct {
	Promoted     bool              `json:"promoted"`
	WriterEpochs map[string]uint64 `json:"writer_epochs"`
	WasReplicaOf string            `json:"was_replica_of"`
}

// Promote asks the node this client was built for to promote itself
// from replica to primary (POST /v1/admin/promote): it stops pulling
// from the old primary, durably bumps every dataset's writer epoch, and
// starts accepting writes. Promotion is an explicit operator action
// against one specific node, so it requires a single-node client (New,
// not NewCluster) and is never retried — a conflict means the node is
// already primary.
func (c *Client) Promote(ctx context.Context) (*PromoteResult, error) {
	if len(c.endpoints) > 0 {
		return nil, fmt.Errorf("client: Promote targets one specific node; use New(endpoint), not NewCluster")
	}
	c.requests.Inc()
	c.attempts.Inc()
	var out PromoteResult
	if err := c.once(ctx, c.base, http.MethodPost, "/v1/admin/promote", []byte("{}"), obs.NewID(), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// do runs one logical call: marshal once, attempt with retries per the
// policy and the call's idempotency class, decode into out. write
// selects the routing plane in cluster mode (sticky primary vs
// round-robin reads).
func (c *Client) do(ctx context.Context, method, path string, in, out any, class retryClass, write bool) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("client: encoding %s %s: %w", method, path, err)
		}
	}
	c.bkt.deposit()
	c.requests.Inc()
	// One trace ID per LOGICAL call, reused verbatim on every retry
	// attempt: a retried release must show up server-side as one story,
	// not as unrelated traces (and the server's duplicate/cache handling
	// means the attempts really are one request).
	traceID := obs.NewID()
	var lastErr error
	for attempt := 1; ; attempt++ {
		c.attempts.Inc()
		if attempt > 1 {
			c.retries.Inc()
		}
		base, idx := c.pickBase(write)
		err := c.once(ctx, base, method, path, body, traceID, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if write && c.clustered() && misroutedWrite(err) {
			// The sticky endpoint cannot take writes (replica, fenced, or
			// unreachable): advance so the retry — and every later write —
			// tries the next node.
			c.advancePrimary(idx)
		}
		if ctx.Err() != nil {
			return lastErr
		}
		if attempt >= c.retry.MaxAttempts || !retryable(err, class, c.clustered()) {
			return lastErr
		}
		if !c.bkt.withdraw() {
			c.budgetDenied.Inc()
			return fmt.Errorf("client: retry budget exhausted: %w", lastErr)
		}
		delay := c.retry.delay(attempt)
		if ra := retryAfterOf(err); ra > delay {
			delay = ra
		}
		t := time.NewTimer(delay)
		select {
		case <-t.C:
			c.backoffNanos.Add(uint64(delay))
		case <-ctx.Done():
			t.Stop()
			return lastErr
		}
	}
}

// misroutedWrite reports a failure proving the write went to a node
// that cannot serve writes at all, as opposed to one that merely failed
// this request.
func misroutedWrite(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Code == CodeReadOnly || apiErr.Code == CodeFenced || apiErr.Code == CodeNotReady
	}
	var te *TransportError
	return errors.As(err, &te)
}

// once performs a single HTTP attempt against base, sending traceID as
// X-Trace-Id so the server adopts (rather than mints) the request's
// trace identity.
func (c *Client) once(ctx context.Context, base, method, path string, body []byte, traceID string, out any) error {
	req, err := http.NewRequestWithContext(ctx, method, base+path, bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("client: building %s %s: %w", method, path, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if traceID != "" {
		req.Header.Set("X-Trace-Id", traceID)
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return &TransportError{Method: method, Path: path, Err: err}
	}
	defer func() {
		// Drain so keep-alive connections are reusable.
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
		resp.Body.Close()
	}()
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil
		}
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			// A truncated 2xx body: the call may have succeeded server-side.
			// Surface as transport-shaped so idempotent calls retry.
			return &TransportError{Method: method, Path: path, Err: fmt.Errorf("decoding response: %w", err)}
		}
		return nil
	}
	return decodeAPIError(resp, method, path)
}
