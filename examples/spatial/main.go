// Spatial comparison: the Figure-5 story in miniature. Builds PrivTree and
// every baseline on a skewed road-like dataset and prints their average
// relative error on medium-size range queries across the privacy sweep.
package main

import (
	"fmt"
	"math/rand/v2"

	"privtree"
)

func main() {
	points := roadLike(200_000)
	domain := privtree.UnitCube(2)

	// A fixed workload of 200 medium queries (0.1–1% of the domain).
	rng := rand.New(rand.NewPCG(7, 7))
	queries := make([]privtree.Rect, 200)
	for i := range queries {
		side := 0.03 + 0.07*rng.Float64()
		lo := privtree.Point{rng.Float64() * (1 - side), rng.Float64() * (1 - side)}
		queries[i] = privtree.NewRect(lo, privtree.Point{lo[0] + side, lo[1] + side})
	}
	exact := make([]float64, len(queries))
	for i, q := range queries {
		for _, p := range points {
			if q.Contains(p) {
				exact[i]++
			}
		}
	}
	smoothing := 0.001 * float64(len(points))

	avgErr := func(m privtree.RangeCounter) float64 {
		total := 0.0
		for i, q := range queries {
			den := exact[i]
			if den < smoothing {
				den = smoothing
			}
			diff := m.RangeCount(q) - exact[i]
			if diff < 0 {
				diff = -diff
			}
			total += diff / den
		}
		return total / float64(len(queries))
	}

	baselines := []privtree.Baseline{
		privtree.BaselineUG, privtree.BaselineAG, privtree.BaselineHierarchy,
		privtree.BaselinePrivelet, privtree.BaselineDAWA, privtree.BaselineSimpleTree,
	}
	fmt.Printf("%-12s", "ε")
	for _, eps := range []float64{0.1, 0.4, 1.6} {
		fmt.Printf("%10.2f", eps)
	}
	fmt.Println()
	for _, method := range append([]privtree.Baseline{"privtree"}, baselines...) {
		fmt.Printf("%-12s", method)
		for _, eps := range []float64{0.1, 0.4, 1.6} {
			var m privtree.RangeCounter
			var err error
			if method == "privtree" {
				m, err = privtree.BuildSpatial(domain, points, eps, privtree.SpatialOptions{Seed: 11})
			} else {
				m, err = privtree.BuildBaseline(method, domain, points, eps, 11)
			}
			if err != nil {
				panic(err)
			}
			fmt.Printf("%9.1f%%", 100*avgErr(m))
		}
		fmt.Println()
	}
	fmt.Println("\n(PrivTree leads or ties the best competitor at every ε with NO tuning;")
	fmt.Println("each baseline needs a height/granularity choice that only suits some ε —")
	fmt.Println("e.g. simpletree's fixed h=8 is competitive here but collapses on larger")
	fmt.Println("or more skewed data, which is the dilemma the paper resolves.)")
}

// roadLike scatters points along random line segments in two clusters —
// the skew profile of road-junction data.
func roadLike(n int) []privtree.Point {
	rng := rand.New(rand.NewPCG(3, 4))
	type seg struct{ ax, ay, bx, by float64 }
	var segs []seg
	for _, c := range [][2]float64{{0.25, 0.75}, {0.75, 0.25}} {
		for i := 0; i < 60; i++ {
			ax := c[0] + 0.35*(rng.Float64()-0.5)
			ay := c[1] + 0.35*(rng.Float64()-0.5)
			segs = append(segs, seg{ax, ay, ax + 0.1*(rng.Float64()-0.5), ay + 0.1*(rng.Float64()-0.5)})
		}
	}
	pts := make([]privtree.Point, n)
	for i := range pts {
		s := segs[rng.IntN(len(segs))]
		t := rng.Float64()
		pts[i] = privtree.Point{
			clamp(s.ax + t*(s.bx-s.ax) + 0.002*rng.NormFloat64()),
			clamp(s.ay + t*(s.by-s.ay) + 0.002*rng.NormFloat64()),
		}
	}
	return pts
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}
