// Session: the budget-composition workflow in-process. A Session holds a
// dataset's total privacy budget ε and every release debits it before the
// mechanism runs (sequential composition, Lemma 2.1 of the paper): here
// three releases — a PrivTree decomposition, a coarser re-parameterized
// one, and a UG baseline for comparison — exhaust a ledger of ε = 1.0,
// the fourth request is rejected with the structured budget error, a
// repeated request is served from cache without a new debit, and the
// audit trail shows where every unit of ε went.
package main

import (
	"errors"
	"fmt"
	"math/rand/v2"

	"privtree"
)

func main() {
	// One private dataset, wrapped once; the raw points never leave it.
	rng := rand.New(rand.NewPCG(5, 6))
	points := make([]privtree.Point, 50_000)
	for i := range points {
		points[i] = privtree.Point{rng.Float64(), rng.Float64() * rng.Float64()}
	}
	data, err := privtree.NewSpatialData(privtree.UnitCube(2), points)
	if err != nil {
		panic(err)
	}

	// Total privacy budget for everything ever derived from this data.
	session, err := privtree.NewSession(1.0)
	if err != nil {
		panic(err)
	}

	// Three releases spend 0.5 + 0.3 + 0.2 = ε.
	type request struct {
		name string
		mech *privtree.Mechanism
		eps  float64
	}
	spatial, err := privtree.NewSpatialMechanism(privtree.SpatialOptions{Seed: 7})
	if err != nil {
		panic(err)
	}
	coarse, err := privtree.NewMechanism("spatial", privtree.Params{Seed: 7, Theta: 50})
	if err != nil {
		panic(err)
	}
	ug, err := privtree.NewBaselineMechanism(privtree.BaselineUG, 7)
	if err != nil {
		panic(err)
	}
	q := privtree.NewRect(privtree.Point{0.1, 0.0}, privtree.Point{0.6, 0.3})
	for _, req := range []request{
		{"privtree θ=0 ", spatial, 0.5},
		{"privtree θ=50", coarse, 0.3},
		{"baseline ug  ", ug, 0.2},
	} {
		rel, cached, err := session.Release(req.mech, data, req.eps)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s  ε=%.1f  cached=%-5v  count(q)≈%8.0f  remaining ε=%.2f\n",
			req.name, req.eps, cached, rel.RangeCount(q), session.Remaining())
	}

	// The ledger is exhausted: the next release never runs.
	if _, _, err := session.Release(spatial, data, 0.1); err != nil {
		var be *privtree.BudgetError
		if errors.As(err, &be) {
			fmt.Printf("\n4th release rejected: requested ε=%g, remaining ε=%g of %g\n",
				be.Requested, be.Remaining, be.Total)
		}
	}

	// Re-requesting an already purchased release is post-processing: the
	// cache serves it with no debit, even on an exhausted ledger.
	rel, cached, err := session.Release(spatial, data, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("repeat request: cached=%v, fingerprint %q\n", cached, rel.Fingerprint())

	fmt.Println("\naudit trail:")
	for _, d := range session.History() {
		fmt.Printf("  ε=%+.2f  %s\n", d.Epsilon, d.Note)
	}
}
