// Quickstart: build a differentially private spatial decomposition over
// synthetic 2-D points and answer range-count queries with it.
package main

import (
	"fmt"
	"math/rand/v2"

	"privtree"
)

func main() {
	// 100k points: a dense city-like cluster plus uniform background.
	rng := rand.New(rand.NewPCG(1, 2))
	points := make([]privtree.Point, 0, 100_000)
	for i := 0; i < 80_000; i++ {
		points = append(points, privtree.Point{
			clamp(0.3 + 0.05*rng.NormFloat64()),
			clamp(0.7 + 0.05*rng.NormFloat64()),
		})
	}
	for i := 0; i < 20_000; i++ {
		points = append(points, privtree.Point{rng.Float64(), rng.Float64()})
	}

	// The mechanism → release pipeline: wrap the private data, bind the
	// spatial mechanism's parameters, run it under ε = 1. (The one-call
	// shorthand privtree.BuildSpatial does exactly this.)
	data, err := privtree.NewSpatialData(privtree.UnitCube(2), points)
	if err != nil {
		panic(err)
	}
	mech, err := privtree.NewSpatialMechanism(privtree.SpatialOptions{Seed: 42})
	if err != nil {
		panic(err)
	}
	release, err := mech.Run(data, 1.0)
	if err != nil {
		panic(err)
	}
	tree, _ := release.Spatial()
	fmt.Printf("private tree (mechanism %q, ε=%g): %d nodes, height %d, total≈%.0f\n",
		release.Mechanism(), release.Epsilon(), tree.Nodes(), tree.Height(), tree.Total())

	// Range-count queries: the dense area vs an empty corner.
	queries := map[string]privtree.Rect{
		"city core   ": privtree.NewRect(privtree.Point{0.25, 0.65}, privtree.Point{0.35, 0.75}),
		"empty corner": privtree.NewRect(privtree.Point{0.85, 0.05}, privtree.Point{0.95, 0.15}),
		"left half   ": privtree.NewRect(privtree.Point{0, 0}, privtree.Point{0.5, 1}),
	}
	for name, q := range queries {
		exact := 0
		for _, p := range points {
			if q.Contains(p) {
				exact++
			}
		}
		fmt.Printf("%s  exact=%6d  private≈%8.0f\n", name, exact, tree.RangeCount(q))
	}
}

func clamp(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x >= 1 {
		return 0.999999
	}
	return x
}
