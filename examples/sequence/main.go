// Sequence modelling: build a private prediction suffix tree over
// clickstream-like sequences, mine frequent strings, and generate a
// synthetic dataset whose length distribution tracks the original.
package main

import (
	"fmt"
	"math/rand/v2"

	"privtree"
)

const alphabet = 6 // e.g. six page categories

func main() {
	data := clickstreams(40_000)

	model, err := privtree.BuildSequenceModel(alphabet, data, 1.0, privtree.SequenceOptions{Seed: 5})
	if err != nil {
		panic(err)
	}
	fmt.Printf("private PST: %d nodes, l⊤=%d\n\n", model.Nodes(), model.MaxLength())

	// Frequent-string mining: compare against the exact top-10.
	fmt.Println("top-10 frequent strings (private estimate vs exact):")
	exact := exactTopK(data, 10, 4)
	for _, fs := range model.TopK(10, 4) {
		fmt.Printf("  %-12v est≈%8.0f exact=%6d\n", fs.Symbols, fs.Count, exact[key(fs.Symbols)])
	}

	// Synthetic generation: length distributions should match closely.
	synth := model.Generate(len(data), 99)
	fmt.Println("\nsequence length distribution (original vs synthetic):")
	origDist, synthDist := lengthDist(data), lengthDist(synth)
	for l := 1; l <= 8; l++ {
		fmt.Printf("  len %d: %5.1f%% vs %5.1f%%\n", l, 100*origDist[l], 100*synthDist[l])
	}
}

// clickstreams generates sessions from a sticky Markov chain: users tend
// to stay within a category and quit with probability ~1/4 per step.
func clickstreams(n int) []privtree.Sequence {
	rng := rand.New(rand.NewPCG(8, 9))
	out := make([]privtree.Sequence, n)
	for i := range out {
		cur := rng.IntN(alphabet)
		var s privtree.Sequence
		for {
			s = append(s, cur)
			if rng.Float64() < 0.25 || len(s) >= 30 {
				break
			}
			if rng.Float64() < 0.6 { // sticky: stay or advance cyclically
				cur = (cur + 1) % alphabet
			} else {
				cur = rng.IntN(alphabet)
			}
		}
		out[i] = s
	}
	return out
}

func key(s []int) string {
	out := ""
	for _, x := range s {
		out += string(rune('0' + x))
	}
	return out
}

func exactTopK(data []privtree.Sequence, k, maxLen int) map[string]int {
	counts := map[string]int{}
	for _, s := range data {
		for i := range s {
			for l := 1; l <= maxLen && i+l <= len(s); l++ {
				counts[key(s[i:i+l])]++
			}
		}
	}
	return counts
}

func lengthDist(data []privtree.Sequence) []float64 {
	dist := make([]float64, 64)
	for _, s := range data {
		l := len(s)
		if l >= len(dist) {
			l = len(dist) - 1
		}
		dist[l]++
	}
	for i := range dist {
		dist[i] /= float64(len(data))
	}
	return dist
}
