// Census: PrivTree over a MIXED numeric/categorical domain (the Section
// 3.5 extension). Records carry an age, an income, and an occupation drawn
// from a two-level taxonomy; the released tree answers private counting
// queries that mix range predicates with category predicates.
package main

import (
	"fmt"
	"math/rand/v2"

	"privtree"
)

func main() {
	schema, err := privtree.NewHybridSchema(
		[]privtree.NumericAttr{
			{Label: "age", Lo: 18, Hi: 100},
			{Label: "income", Lo: 0, Hi: 500_000},
		},
		map[string]*privtree.CategoryNode{
			"occupation": {
				Value: "any",
				Children: []*privtree.CategoryNode{
					{Value: "technical", Children: []*privtree.CategoryNode{
						{Value: "engineer"}, {Value: "scientist"}, {Value: "analyst"},
					}},
					{Value: "service", Children: []*privtree.CategoryNode{
						{Value: "retail"}, {Value: "hospitality"},
					}},
					{Value: "other", Children: []*privtree.CategoryNode{
						{Value: "education"}, {Value: "healthcare"}, {Value: "arts"},
					}},
				},
			},
		})
	if err != nil {
		panic(err)
	}

	records := synthesize(120_000)
	tree, err := privtree.BuildHybrid(schema, records, 1.0, 17)
	if err != nil {
		panic(err)
	}
	fmt.Printf("released hybrid tree, total ≈ %.0f records\n\n", tree.Total())

	queries := []struct {
		name string
		q    privtree.HybridQuery
	}{
		{"engineers aged 25-40", privtree.HybridQuery{
			NumRanges: []*[2]float64{{25, 40}, nil},
			CatValues: []map[string]bool{{"engineer": true}},
		}},
		{"technical, income > 100k", privtree.HybridQuery{
			NumRanges: []*[2]float64{nil, {100_000, 500_000}},
			CatValues: []map[string]bool{{"engineer": true, "scientist": true, "analyst": true}},
		}},
		{"service workers under 30", privtree.HybridQuery{
			NumRanges: []*[2]float64{{18, 30}, nil},
			CatValues: []map[string]bool{{"retail": true, "hospitality": true}},
		}},
	}
	for _, tc := range queries {
		exact := exactCount(records, tc.q)
		fmt.Printf("%-28s exact=%6d  private≈%10.2f\n", tc.name, exact, tree.Count(tc.q))
	}
}

var occupations = []string{
	"engineer", "scientist", "analyst", "retail", "hospitality",
	"education", "healthcare", "arts",
}

// synthesize draws census-like records: technical jobs skew younger and
// richer, service younger and poorer.
func synthesize(n int) []privtree.HybridRecord {
	rng := rand.New(rand.NewPCG(21, 22))
	out := make([]privtree.HybridRecord, n)
	for i := range out {
		occ := occupations[rng.IntN(len(occupations))]
		var age, income float64
		switch occ {
		case "engineer", "scientist", "analyst":
			age = 25 + rng.Float64()*25
			income = 80_000 + rng.Float64()*150_000
		case "retail", "hospitality":
			age = 18 + rng.Float64()*30
			income = 20_000 + rng.Float64()*40_000
		default:
			age = 25 + rng.Float64()*50
			income = 40_000 + rng.Float64()*80_000
		}
		out[i] = privtree.HybridRecord{Nums: []float64{age, income}, Cats: []string{occ}}
	}
	return out
}

func exactCount(records []privtree.HybridRecord, q privtree.HybridQuery) int {
	total := 0
	for _, r := range records {
		ok := true
		for i, nr := range q.NumRanges {
			if nr != nil && (r.Nums[i] < nr[0] || r.Nums[i] >= nr[1]) {
				ok = false
				break
			}
		}
		if ok && len(q.CatValues) > 0 && q.CatValues[0] != nil && !q.CatValues[0][r.Cats[0]] {
			ok = false
		}
		if ok {
			total++
		}
	}
	return total
}
