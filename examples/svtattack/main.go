// SVT attack: reproduces the paper's Section 5 / Appendix A negative
// results numerically. At the claimed noise scale λ = 2/ε, the binary SVT
// (Lee & Clifton) and the vanilla SVT (Hardt) leak privacy loss that grows
// LINEARLY with the number of queries, while the paper's improved SVT
// (Algorithm 6) stays within its guarantee on the same adversarial
// instance.
package main

import (
	"fmt"
	"os"

	"privtree/internal/experiments"
)

func main() {
	cfg := experiments.Config{Out: os.Stdout}
	rows := experiments.SVTViolation(cfg, 0.5)
	fmt.Println()
	last := rows[len(rows)-1]
	fmt.Printf("At k=%d queries the binary SVT's realized loss is %.1f× its claimed bound;\n",
		last.K, last.BinaryLoss/last.AllowedTwoEps)
	fmt.Println("this is the paper's Lemma 5.1: Claim 1 of prior work does not hold, so SVT")
	fmt.Println("cannot replace PrivTree's bias mechanism for hierarchical decompositions.")
}
