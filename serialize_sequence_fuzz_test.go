package privtree

import (
	"encoding/json"
	"testing"
)

// smallModelBlob builds a small released sequence model and returns its
// wire bytes; deliberately tiny so the fuzz engine can mutate and
// re-execute it at full speed.
func smallModelBlob(t testing.TB) []byte {
	t.Helper()
	model, err := BuildSequenceModel(6, makeClickstreams(300), 2.0, SequenceOptions{MaxLength: 8, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(model)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSequenceModelUnmarshalTruncated feeds every kind of cut-off document
// to the deserializer: it must return an error for all of them — and in
// particular must never panic or hand back a half-built arena.
func TestSequenceModelUnmarshalTruncated(t *testing.T) {
	blob := smallModelBlob(t)
	for cut := 0; cut < len(blob); cut += 7 {
		var m SequenceModel
		if err := json.Unmarshal(blob[:cut], &m); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
		if m.model != nil {
			t.Fatalf("truncated blob (%d bytes) left a partial model behind", cut)
		}
	}
}

// TestSequenceModelUnmarshalHostile covers documents that are valid JSON
// but describe impossible or dangerous models.
func TestSequenceModelUnmarshalHostile(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"NaN count", `{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,NaN,1]}}`},
		{"Inf count via exponent", `{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,1e999,1]}}`},
		{"negative count", `{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,-3,1]}}`},
		{"zero ltop", `{"version":1,"alphabet":2,"ltop":0,"root":{"hist":[1,1,1]}}`},
		{"negative ltop", `{"version":1,"alphabet":2,"ltop":-4,"root":{"hist":[1,1,1]}}`},
		{"absurd ltop", `{"version":1,"alphabet":2,"ltop":1099511627776,"root":{"hist":[1,1,1]}}`},
		{"absurd alphabet", `{"version":1,"alphabet":1099511627776,"ltop":5,"root":{"hist":[1,1,1]}}`},
		{"alphabet disagrees with arity", `{"version":1,"alphabet":5,"ltop":5,"root":{"hist":[1,1,1]}}`},
		{"expanded anchored child", `{"version":1,"alphabet":1,"ltop":5,"root":{"hist":[2,2],"children":[
			{"hist":[1,1]},
			{"hist":[1,1],"children":[{"hist":[1,0]},{"hist":[0,1]}]}]}}`},
		{"depth beyond ltop", `{"version":1,"alphabet":1,"ltop":1,"root":{"hist":[2,2],"children":[
			{"hist":[1,1],"children":[{"hist":[1,0]},{"hist":[0,1]}]},
			{"hist":[1,1]}]}}`},
		{"child arity", `{"version":1,"alphabet":1,"ltop":5,"root":{"hist":[2,2],"children":[{"hist":[1,1]}]}}`},
		{"empty child objects", `{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,1,1],"children":[{},{},{}]}}`},
		{"grandchild bad hist", `{"version":1,"alphabet":1,"ltop":5,"root":{"hist":[2,2],"children":[
			{"hist":[1,1],"children":[{"hist":[1]},{"hist":[0,1]}]},
			{"hist":[1,1]}]}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalJSON panicked: %v", r)
				}
			}()
			var m SequenceModel
			if err := json.Unmarshal([]byte(c.blob), &m); err == nil {
				t.Fatal("hostile blob accepted")
			}
		})
	}
}

// FuzzSequenceModelUnmarshal drives arbitrary bytes through UnmarshalJSON,
// mirroring FuzzSpatialTreeUnmarshal. The contract: never panic, and any
// accepted document must denote a coherent model — re-serializing it and
// parsing the result back must preserve frequency estimates exactly, and
// hostile query symbols must never read outside the arena.
func FuzzSequenceModelUnmarshal(f *testing.F) {
	f.Add(smallModelBlob(f))
	f.Add([]byte(`{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[3,2,1]}}`))
	f.Add([]byte(`{"version":1,"alphabet":1,"ltop":3,"root":{"hist":[2,2],"children":[
		{"hist":[1,1]},{"hist":[1,1]}]}}`))
	f.Add([]byte(`{"version":1,"alphabet":2,"ltop":5,"root":{"hist":[1,-1,1]}}`))
	f.Add([]byte(`{"version":1,"alphabet":0,"ltop":5,"root":{"hist":[1]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var m SequenceModel
		if err := json.Unmarshal(data, &m); err != nil {
			return
		}
		// Accepted: the model must round-trip losslessly.
		blob, err := json.Marshal(&m)
		if err != nil {
			t.Fatalf("accepted model failed to marshal: %v", err)
		}
		var again SequenceModel
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("round-tripped bytes rejected: %v", err)
		}
		if again.Nodes() != m.Nodes() || again.MaxLength() != m.MaxLength() {
			t.Fatalf("round trip changed shape: %d/%d nodes, ltop %d/%d",
				again.Nodes(), m.Nodes(), again.MaxLength(), m.MaxLength())
		}
		queries := []Sequence{{0}, {0, 1}, {1, 0, 0}, {2, 2}, {-1}, {99}, {0, -7, 1}}
		for _, q := range queries {
			a, b := m.EstimateFrequency(q), again.EstimateFrequency(q)
			if a != b {
				t.Fatalf("round trip changed estimate(%v): %v vs %v", q, a, b)
			}
		}
	})
}
