package privtree

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"os/exec"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"privtree/internal/dp"
	"privtree/internal/store"
	"privtree/internal/testhooks"
)

// These tests cover the cancelled-build refund path of ReleaseContext:
// once the debit has landed (durably, with a store), cancelling the
// context must refund it — and the refund must be durable BEFORE the
// error returns, the same ordering as a failed build. The crash variant
// SIGKILLs a child process inside the refund's WAL append and asserts the
// recovered spent ε in both directions: refund lost → the debit stands
// (over-count, safe); refund synced → spent returns to zero.

// holdBuilds installs a build-start hook that blocks every build until the
// returned release function is called, signalling entry on entered.
func holdBuilds(t *testing.T, entered chan<- string) (release func()) {
	t.Helper()
	block := make(chan struct{})
	h := func(fp string) {
		select {
		case entered <- fp:
		default:
		}
		<-block
	}
	testhooks.BuildStart.Store(&h)
	t.Cleanup(func() { testhooks.BuildStart.Store(nil) })
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(block)
		}
	}
}

func TestReleaseContextCancelRefundsDurably(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenSession(dir, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan string, 1)
	release := holdBuilds(t, entered)
	defer release()

	m, err := NewSpatialMechanism(SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.ReleaseContext(ctx, m, data, 0.5)
		errCh <- err
	}()
	<-entered // the debit is durable and the build is in flight
	cancel()
	err = <-errCh
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled release returned %v, want a context.Canceled wrap", err)
	}

	// The refund is already visible when the error returns — a retrying
	// caller must see the credited ledger.
	if got := s.Spent(); got != 0 {
		t.Fatalf("spent ε=%v after cancelled build, want 0 (refund lost?)", got)
	}
	hist := s.History()
	if len(hist) != 2 || hist[0].Kind != dp.DebitKindSpend || hist[1].Kind != dp.DebitKindRefund {
		t.Fatalf("audit trail after cancellation: %+v, want [debit, refund]", hist)
	}

	// And it is durable: a recovery of the directory sees debit + refund,
	// netting to zero, with no committed artifact.
	release()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	events := st.Events()
	if len(events) != 2 || events[0].Kind != store.EventDebit || events[1].Kind != store.EventRefund {
		t.Fatalf("recovered events: %+v, want [debit, refund]", events)
	}
	if got := st.SpentEpsilon(); got != 0 {
		t.Fatalf("recovered spent ε=%v, want 0", got)
	}
	if n := len(st.Commits()); n != 0 {
		t.Fatalf("%d artifacts committed by a cancelled build, want 0", n)
	}
}

func TestReleaseContextCancelledBeforeDebitIsFree(t *testing.T) {
	s, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(200))
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewSpatialMechanism(SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := s.ReleaseContext(ctx, m, data, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if len(s.History()) != 0 {
		t.Fatalf("a pre-cancelled request touched the ledger: %+v", s.History())
	}
}

// TestReleaseContextCancelWaiter cancels a request that is waiting behind
// an identical in-flight build: walking away must cost nothing, and the
// surviving build must debit exactly once.
func TestReleaseContextCancelWaiter(t *testing.T) {
	s, err := NewSession(1.0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan string, 1)
	release := holdBuilds(t, entered)
	defer release()

	m, err := NewSpatialMechanism(SpatialOptions{Seed: 7, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	builderErr := make(chan error, 1)
	go func() {
		_, _, err := s.Release(m, data, 0.25)
		builderErr <- err
	}()
	<-entered

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, _, err := s.ReleaseContext(ctx, m, data, 0.25); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("waiter got %v, want context.DeadlineExceeded", err)
	}

	release()
	if err := <-builderErr; err != nil {
		t.Fatal(err)
	}
	if got := s.Spent(); got != 0.25 {
		t.Fatalf("spent ε=%v, want exactly one debit of 0.25", got)
	}
}

// Crash variant: a child process cancels a build and is SIGKILLed inside
// the refund's WAL append. The parent recovers the directory and checks
// the exact spent ε for both outcomes of the torn refund.

const (
	cancelCrashChildEnv = "PRIVTREE_CANCEL_CRASH_CHILD"
	cancelCrashDirEnv   = "PRIVTREE_CANCEL_CRASH_DIR"
	cancelCrashPointEnv = "PRIVTREE_CANCEL_CRASH_POINT"
)

const cancelCrashEps = 0.375

func TestSessionCancelCrashHelper(t *testing.T) {
	if os.Getenv(cancelCrashChildEnv) != "1" {
		t.Skip("crash-harness child process only")
	}
	dir := os.Getenv(cancelCrashDirEnv)
	point := os.Getenv(cancelCrashPointEnv)
	// Hit 1 of every WAL point is the debit; hit 2 is the refund — the
	// record this harness tears.
	var seen atomic.Int64
	store.SetCrashHook(func(p string) {
		if p != point {
			return
		}
		if seen.Add(1) == 2 {
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {}
		}
	})
	defer store.SetCrashHook(nil)

	data, err := NewSpatialData(UnitCube(2), sessionStorePoints(500))
	if err != nil {
		fmt.Printf("CHILD-ERROR data: %v\n", err)
		os.Exit(1)
	}
	s, err := OpenSession(dir, 1.0)
	if err != nil {
		fmt.Printf("CHILD-ERROR open: %v\n", err)
		os.Exit(1)
	}
	entered := make(chan string, 1)
	block := make(chan struct{})
	h := func(fp string) { entered <- fp; <-block }
	testhooks.BuildStart.Store(&h)
	defer testhooks.BuildStart.Store(nil)

	m, err := NewSpatialMechanism(SpatialOptions{Seed: 1, Workers: 1})
	if err != nil {
		fmt.Printf("CHILD-ERROR mech: %v\n", err)
		os.Exit(1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.ReleaseContext(ctx, m, data, cancelCrashEps)
		errCh <- err
	}()
	<-entered
	// The debit is durable (the build hook runs after AppendDebit).
	fmt.Fprintf(os.Stdout, "ACK debit %.17g\n", cancelCrashEps)
	cancel() // drives AppendRefund into the armed crash point
	if err := <-errCh; err != nil {
		// Only reachable when the armed point never fired (e.g. the
		// refund completed); acknowledge it so the parent can assert.
		if errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stdout, "ACK refund %.17g\n", cancelCrashEps)
		} else {
			fmt.Printf("CHILD-ERROR release: %v\n", err)
			os.Exit(1)
		}
	}
	close(block)
	fmt.Println("DONE")
}

func TestSessionCancelCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns one child process per fault point")
	}
	cases := []struct {
		point string
		// wantSpent is the exact recovered spent ε: a refund torn before
		// its WAL write leaves the debit standing (over-count — the safe
		// direction); a refund killed after its fsync is durable and the
		// spend nets to zero.
		wantSpent float64
	}{
		{"wal.before_write", cancelCrashEps},
		{"wal.after_sync", 0},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run", "^TestSessionCancelCrashHelper$", "-test.v")
			cmd.Env = append(os.Environ(),
				cancelCrashChildEnv+"=1",
				cancelCrashDirEnv+"="+dir,
				cancelCrashPointEnv+"="+tc.point,
			)
			var stdout, stderr bytes.Buffer
			cmd.Stdout, cmd.Stderr = &stdout, &stderr
			runErr := cmd.Run()
			if runErr == nil {
				t.Fatalf("child survived the armed crash point\nstdout:\n%s", stdout.String())
			}
			debitAcked := false
			sc := bufio.NewScanner(bytes.NewReader(stdout.Bytes()))
			for sc.Scan() {
				line := sc.Text()
				if strings.HasPrefix(line, "CHILD-ERROR") {
					t.Fatalf("child hit an unexpected error: %s\nstderr:\n%s", line, stderr.String())
				}
				if strings.HasPrefix(line, "ACK debit ") {
					debitAcked = true
				}
			}
			if !debitAcked {
				t.Fatalf("child died before acknowledging the debit\nstdout:\n%s\nstderr:\n%s",
					stdout.String(), stderr.String())
			}

			s, err := OpenSession(dir, 1.0)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer s.Close()
			if got := s.Spent(); math.Abs(got-tc.wantSpent) > 1e-12 {
				t.Fatalf("recovered spent ε=%v, want exactly %v", got, tc.wantSpent)
			}
			if n := len(s.Restored()); n != 0 {
				t.Fatalf("%d releases recovered from a cancelled build, want 0", n)
			}
		})
	}
}
