package privtree

import (
	"encoding/json"
	"math"
	"testing"
)

// smallTreeBlob builds a small released tree and returns its wire bytes.
// It is deliberately tiny (a few dozen nodes) so the fuzz engine can mutate
// and re-execute it at full speed.
func smallTreeBlob(t testing.TB) []byte {
	t.Helper()
	tree, err := BuildSpatial(UnitCube(2), makeClusteredPoints(300), 0.5, SpatialOptions{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tree)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestSpatialTreeUnmarshalTruncated feeds every kind of cut-off document to
// the deserializer: it must return an error for all of them — and in
// particular must never panic or hand back a half-built arena.
func TestSpatialTreeUnmarshalTruncated(t *testing.T) {
	blob := smallTreeBlob(t)
	for cut := 0; cut < len(blob); cut += 7 {
		var tree SpatialTree
		if err := json.Unmarshal(blob[:cut], &tree); err == nil {
			t.Fatalf("truncated blob (%d of %d bytes) accepted", cut, len(blob))
		}
		if tree.tree != nil {
			t.Fatalf("truncated blob (%d bytes) left a partial arena behind", cut)
		}
	}
}

// TestSpatialTreeUnmarshalHostileBounds covers malformed documents that are
// valid JSON but describe impossible geometry; the old deserializer
// panicked on some of these (geom.NewRect panics on inverted intervals).
func TestSpatialTreeUnmarshalHostileBounds(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"inverted root interval", `{"version":1,"fanout":2,"root":{"lo":[1],"hi":[0],"count":1}}`},
		{"inverted child interval", `{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"children":[
			{"lo":[0.5],"hi":[0.2],"count":1},{"lo":[0.5],"hi":[1],"count":1}]}}`},
		{"mismatched child bounds", `{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"children":[
			{"lo":[0,0],"hi":[0.5],"count":1},{"lo":[0.5],"hi":[1],"count":1}]}}`},
		{"empty bounds", `{"version":1,"fanout":2,"root":{"lo":[],"hi":[],"count":1}}`},
		{"fanout zero", `{"version":1,"fanout":0,"root":{"lo":[0],"hi":[1],"children":[{"lo":[0],"hi":[1],"count":1}]}}`},
		{"fanout negative", `{"version":1,"fanout":-3,"root":{"lo":[0],"hi":[1],"count":1}}`},
		{"fanout absurd", `{"version":1,"fanout":1073741824,"root":{"lo":[0],"hi":[1],"count":1}}`},
		{"dimension-changing child", `{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"children":[
			{"lo":[0,0],"hi":[0.5,0.5],"count":1},{"lo":[0.5,0],"hi":[1,1],"count":1}]}}`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("UnmarshalJSON panicked: %v", r)
				}
			}()
			var tree SpatialTree
			if err := json.Unmarshal([]byte(c.blob), &tree); err == nil {
				t.Fatal("hostile blob accepted")
			}
		})
	}
}

// FuzzSpatialTreeUnmarshal drives arbitrary bytes through UnmarshalJSON.
// The contract under fuzzing: never panic, and any accepted document must
// denote a coherent tree — re-serializing it and parsing the result back
// must preserve RangeCount answers exactly.
func FuzzSpatialTreeUnmarshal(f *testing.F) {
	f.Add(smallTreeBlob(f))
	f.Add([]byte(`{"version":1,"fanout":4,"root":{"lo":[0,0],"hi":[1,1],"count":3.5}}`))
	f.Add([]byte(`{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1],"children":[
		{"lo":[0],"hi":[0.5],"count":1},{"lo":[0.5],"hi":[1],"count":2}]}}`))
	f.Add([]byte(`{"version":1,"fanout":2,"root":{"lo":[1],"hi":[0],"count":1}}`))
	f.Add([]byte(`{"version":1,"fanout":0,"root":{"lo":[0],"hi":[1],"count":1}}`))
	f.Add([]byte(`{"version":1,"fanout":2,"root":{"lo":[0],"hi":[1]}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		var tree SpatialTree
		if err := json.Unmarshal(data, &tree); err != nil {
			return
		}
		// Accepted: the tree must round-trip losslessly.
		blob, err := json.Marshal(&tree)
		if err != nil {
			t.Fatalf("accepted tree failed to marshal: %v", err)
		}
		var again SpatialTree
		if err := json.Unmarshal(blob, &again); err != nil {
			t.Fatalf("round-tripped bytes rejected: %v", err)
		}
		dom := tree.Domain()
		if err := dom.Validate(); err != nil {
			// Zero-width axes are representable on the wire (lo == hi);
			// RangeCount still works, it just sees zero volumes.
			if tree.Nodes() != again.Nodes() {
				t.Fatalf("round trip changed node count: %d vs %d", tree.Nodes(), again.Nodes())
			}
			return
		}
		queries := []Rect{
			dom,
			quarterRect(dom, 0),
			quarterRect(dom, 1),
		}
		for _, q := range queries {
			a, b := tree.RangeCount(q), again.RangeCount(q)
			if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
				t.Fatalf("round trip changed RangeCount(%v): %v vs %v", q, a, b)
			}
		}
	})
}

// quarterRect returns a sub-rectangle of dom: half extent per axis,
// anchored at the low (which=0) or high (which=1) corner.
func quarterRect(dom Rect, which int) Rect {
	lo := make(Point, dom.Dims())
	hi := make(Point, dom.Dims())
	for i := range lo {
		mid := dom.Lo[i] + (dom.Hi[i]-dom.Lo[i])/2
		if which == 0 {
			lo[i], hi[i] = dom.Lo[i], mid
		} else {
			lo[i], hi[i] = mid, dom.Hi[i]
		}
	}
	return Rect{Lo: lo, Hi: hi}
}
