package privtree

import (
	"fmt"
	"math"

	"privtree/internal/baseline"
	"privtree/internal/core"
	"privtree/internal/dataset"
	"privtree/internal/dp"
	"privtree/internal/geom"
)

// Point is a location in d-dimensional space.
type Point = geom.Point

// Rect is an axis-aligned box, closed at Lo and open at Hi per axis.
type Rect = geom.Rect

// NewRect builds a Rect spanning [lo[i], hi[i]) on each axis; it panics on
// mismatched dimensions or inverted intervals. Use it for literals; code
// handling untrusted input should use MakeRect.
func NewRect(lo, hi Point) Rect { return geom.NewRect(lo, hi) }

// MakeRect is the non-panicking counterpart of NewRect: mismatched or
// empty bound slices, non-finite coordinates, and inverted intervals are
// reported as errors, so untrusted input (HTTP bodies, CLI strings,
// serialized documents) can be turned into rectangles safely. Empty
// intervals (lo == hi) are accepted — query rectangles may be empty.
func MakeRect(lo, hi Point) (Rect, error) { return geom.MakeRect(lo, hi) }

// UnitCube returns the domain [0,1)^d.
func UnitCube(d int) Rect { return geom.UnitCube(d) }

// SpatialOptions tunes the spatial mechanism beyond the paper defaults.
type SpatialOptions struct {
	// Fanout is β; 0 means 2^d (the quadtree family the paper uses).
	Fanout int
	// Theta is the split threshold; the paper default is 0.
	Theta float64
	// TreeBudgetFraction is the share of ε spent on the decomposition
	// structure (the rest buys leaf counts); 0 means the paper's 1/2.
	TreeBudgetFraction float64
	// MaxDepth caps recursion as an engineering guard; 0 means 64.
	MaxDepth int
	// AffectedLeaves is x in the paper's third Section 3.5 extension: if
	// one individual can contribute points to up to x leaves (e.g. a
	// person with x check-ins), the noise scale is enlarged x-fold to
	// keep the release ε-DP at the individual level. 0 or 1 means the
	// standard one-point-per-individual setting.
	AffectedLeaves int
	// Seed makes the build reproducible; 0 picks a fixed default.
	Seed uint64
	// Workers bounds the goroutines used for tree construction: 0 means
	// GOMAXPROCS, 1 forces a serial build. Noise is drawn from per-node
	// splittable streams, so the released tree is identical for every
	// Workers setting — only the build time changes.
	Workers int
}

// SpatialTree is a released private decomposition with noisy counts.
type SpatialTree struct {
	tree *core.Tree
}

// BuildSpatial runs the full PrivTree pipeline of the paper's Section 3 on
// points over domain under total privacy budget eps: ε/2 builds the tree
// (Algorithm 2), ε/2 buys noisy leaf counts, and internal counts are leaf
// sums. Every point must lie inside domain.
//
// Invalid parameters — a non-positive or non-finite ε, a fanout below 2, a
// degenerate domain, a TreeBudgetFraction outside (0,1) — are rejected with
// an error, never a panic.
//
// BuildSpatial is a thin wrapper over the "spatial" registry mechanism:
// it runs the same validation and build implementation as NewSpatialData
// + NewSpatialMechanism + Run, skipping only the Data/Release boxing so
// the build stays allocation-lean. Use Session.Release to run the
// mechanism against a privacy-budget ledger.
func BuildSpatial(domain Rect, points []Point, eps float64, opts SpatialOptions) (*SpatialTree, error) {
	if err := domain.Validate(); err != nil {
		return nil, fmt.Errorf("privtree: invalid domain: %w", err)
	}
	data, err := dataset.NewSpatial(domain, points)
	if err != nil {
		return nil, err
	}
	p := Params{
		Seed:               opts.Seed,
		Fanout:             opts.Fanout,
		Theta:              opts.Theta,
		TreeBudgetFraction: opts.TreeBudgetFraction,
		MaxDepth:           opts.MaxDepth,
		AffectedLeaves:     opts.AffectedLeaves,
		Workers:            opts.Workers,
	}
	if err := validateSpatialParams(p); err != nil {
		return nil, fmt.Errorf("privtree: mechanism spatial: %w", err)
	}
	return buildSpatialTree(data, eps, p)
}

// buildSpatialTree is the spatial mechanism implementation shared by the
// registry and the BuildSpatial wrapper. data has been validated by
// NewSpatialData; p by validateSpatialParams.
func buildSpatialTree(data *dataset.Spatial, eps float64, p Params) (*SpatialTree, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	domain := data.Domain
	d := domain.Dims()
	fanout := p.Fanout
	var split geom.Splitter
	switch {
	case fanout == 0 || fanout == 1<<d:
		fanout = 1 << d
		split = geom.FullBisect{Dim: d}
	default:
		// Accept 2^k fanouts below 2^d via round-robin splitting.
		k := 0
		for 1<<k < fanout {
			k++
		}
		if 1<<k != fanout || k < 1 || k > d {
			return nil, fmt.Errorf("privtree: fanout %d not realizable in %d dimensions (want a power of two ≤ 2^d)", fanout, d)
		}
		split = geom.RoundRobinBisect{Dim: d, PerStep: k}
	}
	frac := p.TreeBudgetFraction
	if frac == 0 {
		frac = 0.5
	}
	sens := 1.0
	if p.AffectedLeaves > 1 {
		sens = float64(p.AffectedLeaves)
	}
	rng := dp.NewRand(seedOrDefault(p.Seed))
	cp := core.Params{
		Epsilon:     eps * frac,
		Fanout:      fanout,
		Theta:       p.Theta,
		MaxDepth:    p.MaxDepth,
		Sensitivity: sens,
		Workers:     p.Workers,
	}
	// The count release scales identically: x leaves can each change by
	// one, so the leaf-count vector has L1 sensitivity x.
	t, err := core.BuildNoisyParams(data, split, cp, eps*(1-frac)/sens, rng)
	if err != nil {
		return nil, err
	}
	return &SpatialTree{tree: t}, nil
}

// RangeCount estimates the number of points inside q (the noisy traversal
// of Section 2.2, with the uniformity assumption at leaves).
func (t *SpatialTree) RangeCount(q Rect) float64 { return t.tree.RangeCount(q) }

// Total returns the tree's noisy estimate of the dataset cardinality.
func (t *SpatialTree) Total() float64 { return t.tree.Root().Count() }

// Domain returns the root region the tree decomposes. The rectangle aliases
// the tree's storage and must not be mutated.
func (t *SpatialTree) Domain() Rect { return t.tree.Root().Region() }

// Nodes returns the number of nodes in the decomposition.
func (t *SpatialTree) Nodes() int { return t.tree.Size() }

// Height returns the tree height (root = 0) — unconstrained by design,
// this is the paper's headline property.
func (t *SpatialTree) Height() int { return t.tree.Height() }

// Leaves returns the leaf regions with their released noisy counts.
func (t *SpatialTree) Leaves() []LeafRegion {
	leaves := t.tree.Leaves()
	out := make([]LeafRegion, len(leaves))
	for i, l := range leaves {
		out[i] = LeafRegion{Region: l.Region(), Count: l.Count(), Depth: l.Depth()}
	}
	return out
}

// LeafRegion is one released leaf: its region, noisy count, and depth.
type LeafRegion struct {
	Region Rect
	Count  float64
	Depth  int
}

// RequiredNoiseScale exposes Corollary 1: the minimum Laplace scale for a
// fanout-β PrivTree at budget ε.
func RequiredNoiseScale(beta int, eps float64) float64 {
	return core.LambdaForEpsilon(beta, eps)
}

// seedOrDefault maps seed 0 to a fixed constant so the zero-value options
// are still deterministic.
func seedOrDefault(seed uint64) uint64 {
	if seed == 0 {
		return 0x70726976 // "priv"
	}
	return seed
}

// Baseline identifies one of the paper's comparison methods.
type Baseline string

// The Figure 5 lineup (SimpleTree is the paper's Algorithm 1 strawman).
const (
	BaselineUG         Baseline = "ug"
	BaselineAG         Baseline = "ag"
	BaselineHierarchy  Baseline = "hierarchy"
	BaselinePrivelet   Baseline = "privelet"
	BaselineDAWA       Baseline = "dawa"
	BaselineSimpleTree Baseline = "simpletree"
)

// RangeCounter answers range-count queries; all baselines, SpatialTree,
// and spatial/baseline Releases satisfy it.
type RangeCounter interface {
	RangeCount(q Rect) float64
}

// BuildBaseline constructs one of the comparison methods on the same data
// under budget eps. AG and Hierarchy require 2-D data. SimpleTree uses the
// paper's Algorithm 1 with height 8.
//
// BuildBaseline is a thin wrapper over the "baseline/*" registry
// mechanisms (it shares their validation and build implementation); use
// NewBaselineMechanism with a Session for budget-accounted builds.
func BuildBaseline(b Baseline, domain Rect, points []Point, eps float64, seed uint64) (RangeCounter, error) {
	if _, ok := mechanismRegistry["baseline/"+string(b)]; !ok {
		return nil, fmt.Errorf("privtree: unknown baseline %q", b)
	}
	if err := domain.Validate(); err != nil {
		return nil, fmt.Errorf("privtree: invalid domain: %w", err)
	}
	data, err := dataset.NewSpatial(domain, points)
	if err != nil {
		return nil, err
	}
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("privtree: epsilon must be positive and finite, got %v", eps)
	}
	return buildBaseline(b, data, eps, seed)
}

// buildBaseline is the baseline mechanism implementation shared by the
// registry and the BuildBaseline wrapper.
func buildBaseline(b Baseline, data *dataset.Spatial, eps float64, seed uint64) (RangeCounter, error) {
	domain := data.Domain
	rng := dp.NewRand(seedOrDefault(seed))
	switch b {
	case BaselineUG:
		return baseline.NewUG(data, eps, rng), nil
	case BaselineAG:
		if domain.Dims() != 2 {
			return nil, fmt.Errorf("privtree: AG requires 2-D data")
		}
		return baseline.NewAG(data, eps, rng), nil
	case BaselineHierarchy:
		if domain.Dims() != 2 {
			return nil, fmt.Errorf("privtree: Hierarchy requires 2-D data")
		}
		return baseline.NewHierarchy(data, eps, rng), nil
	case BaselinePrivelet:
		return baseline.NewPrivelet(data, eps, rng), nil
	case BaselineDAWA:
		return baseline.NewDAWA(data, eps, rng), nil
	case BaselineSimpleTree:
		d := domain.Dims()
		return baseline.NewSimpleTree(data, geom.FullBisect{Dim: d}, eps, 0, 8, rng), nil
	}
	return nil, fmt.Errorf("privtree: unknown baseline %q", b)
}
