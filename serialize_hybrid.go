package privtree

import (
	"encoding/json"
	"fmt"
	"math"

	"privtree/internal/hybrid"
)

// This file serializes hybrid-domain releases. Like the spatial and
// sequence wire formats, the document contains exactly what the mechanism
// released — the schema shape, leaf regions, and noisy leaf counts — so
// the bytes carry the same ε-DP guarantee as the in-memory tree. Internal
// counts are reconstructed as leaf sums, exactly as the release pipeline
// defines them.

// maxWireAttrs bounds the attribute count accepted from the wire; far
// beyond any real schema, tight enough that a hostile document cannot
// drive absurd per-node allocations.
const maxWireAttrs = 1 << 12

// hybridJSON is the wire form of a HybridTree.
type hybridJSON struct {
	Version    int              `json:"version"`
	Numeric    []hybridAttrJSON `json:"numeric,omitempty"`
	Taxonomies []hybridTaxJSON  `json:"taxonomies,omitempty"`
	Root       hybridNodeJSON   `json:"root"`
}

type hybridAttrJSON struct {
	Name string  `json:"name"`
	Lo   float64 `json:"lo"`
	Hi   float64 `json:"hi"`
}

type hybridTaxJSON struct {
	Name string       `json:"name"`
	Root *taxNodeJSON `json:"root"`
}

type taxNodeJSON struct {
	Value    string         `json:"value"`
	Children []*taxNodeJSON `json:"children,omitempty"`
}

type hybridNodeJSON struct {
	// Ranges holds [lo, hi) per numeric attribute, in schema order.
	Ranges [][2]float64 `json:"ranges,omitempty"`
	// Cats holds the taxonomy group label per categorical attribute.
	Cats     []string         `json:"cats,omitempty"`
	Count    *float64         `json:"count,omitempty"` // leaves only
	Children []hybridNodeJSON `json:"children,omitempty"`
}

func taxNodeToWire(n *hybrid.TaxNode) *taxNodeJSON {
	out := &taxNodeJSON{Value: n.Value}
	for _, c := range n.Children {
		out.Children = append(out.Children, taxNodeToWire(c))
	}
	return out
}

func taxNodeFromWire(n *taxNodeJSON) (*hybrid.TaxNode, error) {
	if n == nil {
		return nil, fmt.Errorf("privtree: taxonomy node missing")
	}
	out := &hybrid.TaxNode{Value: n.Value}
	for _, c := range n.Children {
		child, err := taxNodeFromWire(c)
		if err != nil {
			return nil, err
		}
		out.Children = append(out.Children, child)
	}
	return out, nil
}

// MarshalJSON implements json.Marshaler for HybridTree. Only leaves carry
// counts; internal counts are leaf sums and are reconstructed on decode.
func (t *HybridTree) MarshalJSON() ([]byte, error) {
	schema := t.tree.Schema
	wire := hybridJSON{Version: 1}
	for _, a := range schema.Numeric {
		wire.Numeric = append(wire.Numeric, hybridAttrJSON{Name: a.Label, Lo: a.Lo, Hi: a.Hi})
	}
	for _, tax := range schema.Categorical {
		wire.Taxonomies = append(wire.Taxonomies, hybridTaxJSON{Name: tax.Label, Root: taxNodeToWire(tax.Root)})
	}
	var conv func(n *hybrid.Node) hybridNodeJSON
	conv = func(n *hybrid.Node) hybridNodeJSON {
		out := hybridNodeJSON{Ranges: n.NumericRanges, Cats: n.Categories}
		if n.IsLeaf() {
			c := n.Count
			out.Count = &c
			return out
		}
		out.Children = make([]hybridNodeJSON, len(n.Children))
		for i, c := range n.Children {
			out.Children[i] = conv(c)
		}
		return out
	}
	wire.Root = conv(t.tree.Root)
	return json.Marshal(wire)
}

// taxLookup indexes one taxonomy for the decoder: values are unique per
// taxonomy (NewTaxonomy enforces it), so a value resolves a group in O(1),
// and the DFS interval [in, out) per node makes "g lies in p's subtree" a
// pair of integer comparisons — a hostile document cannot force the
// quadratic subtree scans a per-node search would cost.
type taxLookup struct {
	node    map[string]*hybrid.TaxNode
	in, out map[string]int
}

func indexTaxonomy(root *hybrid.TaxNode) taxLookup {
	lk := taxLookup{
		node: map[string]*hybrid.TaxNode{},
		in:   map[string]int{},
		out:  map[string]int{},
	}
	clock := 0
	var dfs func(n *hybrid.TaxNode)
	dfs = func(n *hybrid.TaxNode) {
		lk.node[n.Value] = n
		lk.in[n.Value] = clock
		clock++
		for _, c := range n.Children {
			dfs(c)
		}
		lk.out[n.Value] = clock
		clock++
	}
	dfs(root)
	return lk
}

// contains reports whether the group labeled child lies in the subtree of
// the group labeled parent (inclusive).
func (lk taxLookup) contains(parent, child string) bool {
	return lk.in[parent] <= lk.in[child] && lk.out[child] <= lk.out[parent]
}

// UnmarshalJSON implements json.Unmarshaler for HybridTree with the same
// zero-trust posture as the spatial and sequence decoders: version and
// schema shape are checked first, every node's range/category arity must
// match the schema, ranges must be finite, non-inverted, and contained in
// the parent's, category groups must exist inside the parent's group
// subtree, and leaf counts must be finite. Truncated or otherwise
// malformed documents leave the receiver untouched.
func (t *HybridTree) UnmarshalJSON(data []byte) error {
	var wire hybridJSON
	if err := json.Unmarshal(data, &wire); err != nil {
		return err
	}
	if wire.Version != 1 {
		return fmt.Errorf("privtree: unsupported hybrid tree version %d", wire.Version)
	}
	nAttrs := len(wire.Numeric) + len(wire.Taxonomies)
	if nAttrs < 1 {
		return fmt.Errorf("privtree: hybrid tree needs at least one attribute")
	}
	if nAttrs > maxWireAttrs {
		return fmt.Errorf("privtree: %d attributes exceeds limit %d", nAttrs, maxWireAttrs)
	}
	schema := hybrid.Schema{}
	for i, a := range wire.Numeric {
		if math.IsNaN(a.Lo) || math.IsInf(a.Lo, 0) || math.IsNaN(a.Hi) || math.IsInf(a.Hi, 0) || !(a.Lo < a.Hi) {
			return fmt.Errorf("privtree: numeric attribute %d has unusable bounds [%v, %v)", i, a.Lo, a.Hi)
		}
		schema.Numeric = append(schema.Numeric, hybrid.Numeric{Label: a.Name, Lo: a.Lo, Hi: a.Hi})
	}
	lookups := make([]taxLookup, 0, len(wire.Taxonomies))
	for i, tw := range wire.Taxonomies {
		root, err := taxNodeFromWire(tw.Root)
		if err != nil {
			return fmt.Errorf("privtree: taxonomy %d: %w", i, err)
		}
		tax, err := hybrid.NewTaxonomy(tw.Name, root)
		if err != nil {
			return fmt.Errorf("privtree: %w", err)
		}
		schema.Categorical = append(schema.Categorical, tax)
		lookups = append(lookups, indexTaxonomy(root))
	}

	type parentCtx struct {
		ranges [][2]float64
		groups []*hybrid.TaxNode
	}
	var conv func(w *hybridNodeJSON, parent *parentCtx, depth int) (*hybrid.Node, float64, error)
	conv = func(w *hybridNodeJSON, parent *parentCtx, depth int) (*hybrid.Node, float64, error) {
		if len(w.Ranges) != len(schema.Numeric) {
			return nil, 0, fmt.Errorf("privtree: node has %d ranges, schema has %d numeric attributes", len(w.Ranges), len(schema.Numeric))
		}
		if len(w.Cats) != len(schema.Categorical) {
			return nil, 0, fmt.Errorf("privtree: node has %d categories, schema has %d taxonomies", len(w.Cats), len(schema.Categorical))
		}
		for i, r := range w.Ranges {
			if math.IsNaN(r[0]) || math.IsInf(r[0], 0) || math.IsNaN(r[1]) || math.IsInf(r[1], 0) || !(r[0] < r[1]) {
				return nil, 0, fmt.Errorf("privtree: node range %d unusable: [%v, %v)", i, r[0], r[1])
			}
			if parent == nil {
				// Root ranges must be exactly the declared attribute domain.
				if r[0] != schema.Numeric[i].Lo || r[1] != schema.Numeric[i].Hi {
					return nil, 0, fmt.Errorf("privtree: root range %d is [%v, %v), attribute declares [%v, %v)",
						i, r[0], r[1], schema.Numeric[i].Lo, schema.Numeric[i].Hi)
				}
			} else if r[0] < parent.ranges[i][0] || r[1] > parent.ranges[i][1] {
				return nil, 0, fmt.Errorf("privtree: child range %d escapes parent", i)
			}
		}
		groups := make([]*hybrid.TaxNode, len(w.Cats))
		for j, val := range w.Cats {
			if parent == nil {
				home := schema.Categorical[j].Root
				if home.Value != val {
					return nil, 0, fmt.Errorf("privtree: root category %d is %q, taxonomy root is %q", j, val, home.Value)
				}
				groups[j] = home
				continue
			}
			g, ok := lookups[j].node[val]
			if !ok || !lookups[j].contains(parent.groups[j].Value, val) {
				return nil, 0, fmt.Errorf("privtree: category %q not under parent group %q", val, parent.groups[j].Value)
			}
			groups[j] = g
		}
		node := &hybrid.Node{
			NumericRanges: w.Ranges,
			Categories:    w.Cats,
			Depth:         depth,
		}
		if len(w.Children) == 0 {
			if w.Count == nil {
				return nil, 0, fmt.Errorf("privtree: hybrid leaf without count")
			}
			if math.IsNaN(*w.Count) || math.IsInf(*w.Count, 0) {
				return nil, 0, fmt.Errorf("privtree: non-finite leaf count %v", *w.Count)
			}
			node.Count = *w.Count
			return node, node.Count, nil
		}
		if len(w.Children) > maxWireFanout {
			return nil, 0, fmt.Errorf("privtree: node has %d children, limit %d", len(w.Children), maxWireFanout)
		}
		ctx := &parentCtx{ranges: w.Ranges, groups: groups}
		node.Children = make([]*hybrid.Node, len(w.Children))
		total := 0.0
		for i := range w.Children {
			child, sum, err := conv(&w.Children[i], ctx, depth+1)
			if err != nil {
				return nil, 0, err
			}
			node.Children[i] = child
			total += sum
		}
		node.Count = total
		return node, total, nil
	}
	root, _, err := conv(&wire.Root, nil, 0)
	if err != nil {
		return err
	}
	t.tree = &hybrid.Tree{Schema: schema, Root: root}
	return nil
}
